"""Event-driven asynchronous execution engine.

Inverts the relationship between training and the delay simulation: the
discrete-event machinery in :mod:`repro.simulation.events` *prices* a
finished lockstep run after the fact, whereas this module's shared event
queue drives training itself.  Four event kinds circulate:

* ``worker_compute_done`` — one worker finished one local iteration at
  its simulated completion time; the algorithm's gradient step for that
  worker fires *inside* the event handler,
* ``upload_arrived`` — a finished interval's state reached the
  aggregator over the LAN/WAN (message loss, duplication and staleness
  fates from an attached :class:`~repro.faults.FaultInjector` are
  realized per upload, replacing the lockstep ``degrade_round`` path),
* ``edge_quorum_met`` — enough fresh uploads arrived to close the
  aggregation round; whatever versions arrived are aggregated,
* ``cloud_sync`` — every ``pi``-th round the edge groups meet at the
  cloud barrier.

The runner owns time, ordering and bookkeeping; the *client* (an
algorithm mixing in :class:`repro.algorithms.AsyncExecutionMixin`) owns
the numerics.  A client is duck-typed and provides::

    group_members          list of flat worker-id arrays, one per group
    local_step(w, t)       one gradient step of worker w at nominal
                           iteration t; returns the batch loss
    snapshot_stale(w)      buffer worker w's state for a later stale fold
    resync_worker(w, g)    worker w downloads group g's current model
    close_round(g, r, fresh, stale, receivers, upload_events, dark)
                           aggregate round r from the fresh ids and the
                           (worker, staleness) stale pairs; redistribute
                           to the receivers; bill upload_events transfers
    cloud_sync(k, receivers)   cloud round k over all groups
    round_complete(r, time)    barrier notification: every group's round
                           r state is final (evaluation hook)

Per-node message buffers (the arrived-but-not-yet-folded uploads) follow
the per-node mailbox idiom of asynchronous FL simulators: a late or
fault-stale upload is *buffered* with its model version, the sender is
resynchronized to the current model and resumes computing, and the
buffered contribution enters the next closure with staleness
``s = current_version - uploaded_version``.

With ``quorum=1.0`` and no faults every round closes with every member
fresh, which reduces the whole machine to the lockstep barrier schedule
— the sync-equivalence guarantee pinned by the golden-trajectory tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.simulation.devices import DEVICE_PRESETS, DeviceProfile
from repro.simulation.events import (
    CloudRoundRecord,
    EdgeRoundRecord,
    EventSimulation,
)
from repro.monitoring.monitor import get_monitor
from repro.simulation.links import (
    DEFAULT_RETRY_POLICY,
    LINK_PRESETS,
    LinkProfile,
)
from repro.telemetry import get_tracer
from repro.utils.rng import make_rng
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_quorum,
)

__all__ = [
    "EVENT_WORKER_STEP",
    "EVENT_UPLOAD_ARRIVED",
    "EVENT_QUORUM_MET",
    "EVENT_CLOUD_SYNC",
    "Event",
    "EventQueue",
    "AsyncDeployment",
    "EventLoopRunner",
]

EVENT_WORKER_STEP = "worker_compute_done"
EVENT_UPLOAD_ARRIVED = "upload_arrived"
EVENT_QUORUM_MET = "edge_quorum_met"
EVENT_CLOUD_SYNC = "cloud_sync"

# Worker phases.
_COMPUTING = 0
_WAITING = 1
_DONE = 2


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled occurrence on the shared queue.

    Ordered by ``(time, seq)``: simultaneous events pop in push (FIFO)
    order, which keeps replays bit-deterministic.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    data: dict = field(compare=False)


class EventQueue:
    """Min-heap event queue with FIFO tie-breaking and event counters."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = 0
        self.pushed = 0
        self.processed = 0

    def push(self, time: float, kind: str, **data) -> Event:
        """Schedule ``kind`` at simulated ``time``."""
        if not (np.isfinite(time) and time >= 0.0):
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        event = Event(float(time), self._seq, kind, data)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self.pushed += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        self.processed += 1
        return heapq.heappop(self._heap)

    def state_dict(self) -> dict:
        """JSON-able snapshot (event data must be JSON-able itself)."""
        return {
            "heap": [
                [e.time, e.seq, e.kind, dict(e.data)] for e in self._heap
            ],
            "seq": self._seq,
            "pushed": self.pushed,
            "processed": self.processed,
        }

    def load_state_dict(self, state: dict) -> None:
        # The (time, seq) ordering is total, so any valid heap over the
        # same events pops in the identical sequence — heapify is safe.
        self._heap = [
            Event(float(t), int(s), str(kind), dict(data))
            for t, s, kind, data in state["heap"]
        ]
        heapq.heapify(self._heap)
        self._seq = int(state["seq"])
        self.pushed = int(state["pushed"])
        self.processed = int(state["processed"])

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class AsyncDeployment:
    """Physical deployment an event-driven run executes on.

    Bundles the device and link profiles of
    :class:`~repro.simulation.events.EventDrivenSimulator` plus the edge
    quorum, so algorithm constructors take one argument instead of six.
    """

    worker_devices: list[DeviceProfile]
    payload_bytes: float
    edge_device: DeviceProfile | None = None
    cloud_device: DeviceProfile | None = None
    lan: LinkProfile | None = None
    wan: LinkProfile | None = None
    quorum: float = 1.0

    def __post_init__(self):
        if not self.worker_devices:
            raise ValueError("worker_devices must be non-empty")
        self.payload_bytes = check_positive(self.payload_bytes,
                                            "payload_bytes")
        self.edge_device = self.edge_device or DEVICE_PRESETS[
            "macbook_pro_i7"
        ]
        self.cloud_device = self.cloud_device or DEVICE_PRESETS[
            "gpu_tower_2080ti"
        ]
        self.lan = self.lan or LINK_PRESETS["wifi_5ghz"]
        self.wan = self.wan or LINK_PRESETS["wan_internet"]
        self.quorum = check_quorum(self.quorum)


class EventLoopRunner:
    """Drive one training run from the shared event queue.

    After :meth:`run`, ``result`` holds the
    :class:`~repro.simulation.events.EventSimulation` (edge/cloud round
    records with staleness fields), ``stale_log`` the realized
    ``(group, round, worker, staleness)`` folds, and
    ``diverged_at``/``diverged_loss`` the abort point when a non-finite
    loss stopped the run.
    """

    def __init__(
        self,
        client,
        deployment: AsyncDeployment,
        *,
        tau: int,
        pi: int = 1,
        total_iterations: int,
        faults=None,
        rng=None,
        flat: bool = False,
        stop_on_divergence: bool = True,
    ):
        self.client = client
        self.dep = deployment
        self.tau = check_positive_int(tau, "tau")
        self.pi = check_positive_int(pi, "pi")
        self.total_iterations = check_positive_int(
            total_iterations, "total_iterations"
        )
        # An inactive injector realizes nothing; skip it entirely so the
        # zero-fault path stays bit-exact and draw-free.  Scripted
        # crashes are exempt: they must fire even from a crash-only
        # (numerically pristine) plan, so the original injector is kept
        # under a separate name.
        self._crash_faults = faults
        self.faults = faults if faults is not None and faults.active else None
        self.rng = make_rng(rng)
        self.flat = bool(flat)
        self.stop_on_divergence = bool(stop_on_divergence)

        self.groups = [
            np.asarray(group, dtype=int) for group in client.group_members
        ]
        self.num_groups = len(self.groups)
        self.num_workers = sum(len(group) for group in self.groups)
        if len(deployment.worker_devices) != self.num_workers:
            raise ValueError(
                f"{len(deployment.worker_devices)} devices for "
                f"{self.num_workers} workers"
            )
        # Flat (two-tier) groups upload straight to the cloud over the
        # WAN; three-tier groups talk to their edge node over the LAN.
        if self.flat:
            self._upload_link = deployment.wan
            self._group_device = deployment.cloud_device
        else:
            self._upload_link = deployment.lan
            self._group_device = deployment.edge_device

        self.total_rounds = math.ceil(self.total_iterations / self.tau)
        self._group_of = np.empty(self.num_workers, dtype=int)
        for g, members in enumerate(self.groups):
            self._group_of[members] = g
        self._needed = [
            max(1, math.ceil(deployment.quorum * len(members)))
            for members in self.groups
        ]

        # Per-worker state.
        self._clock = np.zeros(self.num_workers)
        self._phase = [_COMPUTING] * self.num_workers
        self._version = [0] * self.num_workers
        self._steps_left = [0] * self.num_workers
        # Per-group round state.
        self._fresh: list[dict[int, float]] = [
            {} for _ in range(self.num_groups)
        ]
        self._stale: list[dict[int, int]] = [
            {} for _ in range(self.num_groups)
        ]
        self._lost: list[set[int]] = [set() for _ in range(self.num_groups)]
        self._inflight: list[set[int]] = [
            set() for _ in range(self.num_groups)
        ]
        self._pending_transfers = [0] * self.num_groups
        self._closing = [False] * self.num_groups
        self._next_round = [1] * self.num_groups
        self._completed = [0] * self.num_groups
        self._stale_since_cloud: list[set[int]] = [
            set() for _ in range(self.num_groups)
        ]
        # Cloud barrier: group -> (WAN-upload-ready time, receiver set).
        self._cloud_wait: dict[int, tuple[float, set[int]]] = {}
        self._cloud_round = 0
        self._notified = 0
        self._worker_masks: dict[int, np.ndarray | None] = {}

        self.queue = EventQueue()
        # Optional durability hook, set by the client before ``run``:
        # called with the runner between events whenever a round barrier
        # advanced ``_notified`` — the only points where the client's
        # history is coherent with the engine state.
        self.checkpoint_hook = None
        self._ckpt_notified = 0
        self.result: EventSimulation | None = None
        self.stale_log: list[tuple[int, int, int, int]] = []
        self.uploads_sent = 0
        self.last_event_time = 0.0
        self.diverged_at: int | None = None
        self.diverged_loss = float("nan")
        self._aborted = False
        self._edge_records: list[EdgeRoundRecord] = []
        self._cloud_records: list[CloudRoundRecord] = []

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, *, resume: bool = False) -> EventSimulation:
        """Process events until every group completed every round.

        With ``resume=True`` the initial worker intervals are NOT
        seeded — the restored event queue (from :meth:`load_state_dict`)
        already holds every in-flight occurrence.
        """
        if not resume:
            for worker in range(self.num_workers):
                self._begin_interval(worker, 0.0)
        handlers = {
            EVENT_WORKER_STEP: self._on_worker_step,
            EVENT_UPLOAD_ARRIVED: self._on_upload_arrived,
            EVENT_QUORUM_MET: self._on_quorum_met,
            EVENT_CLOUD_SYNC: self._on_cloud_sync,
        }
        # Generous runaway backstop: a healthy run processes a few
        # events per worker iteration plus a few per round.
        limit = 1000 + 100 * self.num_workers * self.total_iterations
        tracer = get_tracer()
        try:
            while self.queue and not self._aborted:
                if (
                    self.checkpoint_hook is not None
                    and self._notified > self._ckpt_notified
                ):
                    # Between events, right after a round barrier: the
                    # client evaluated, every group's state is final.
                    self._ckpt_notified = self._notified
                    self.checkpoint_hook(self)
                if self._notified >= self.total_rounds:
                    break
                event = self.queue.pop()
                if self.queue.processed > limit:
                    raise RuntimeError(
                        "event budget exceeded — the event loop is not "
                        "converging (engine bug or pathological deployment)"
                    )
                self.last_event_time = event.time
                if (
                    self._crash_faults is not None
                    and event.kind == EVENT_WORKER_STEP
                ):
                    # Scripted kill: the first worker event at a crashed
                    # nominal iteration aborts the process before any
                    # state mutates (FIFO pop order makes it replayable).
                    self._crash_faults.maybe_crash(event.data["t"])
                if tracer.enabled:
                    tracer.count(f"eventsim.{event.kind}")
                handlers[event.kind](event)
        finally:
            # Build the result even when a handler raised (e.g. a
            # MonitorAbort escalated by a health monitor) so callers can
            # still read the rounds completed up to that point.
            self.result = EventSimulation(
                edge_rounds=self._edge_records,
                cloud_rounds=self._cloud_records,
            )
        return self.result

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _interval_length(self, round_index: int) -> int:
        """Local iterations of round ``round_index`` (short tail interval)."""
        return min(
            self.tau,
            self.total_iterations - (round_index - 1) * self.tau,
        )

    def _begin_interval(self, worker: int, at_time: float) -> None:
        version = self._version[worker]
        if version >= self.total_rounds:
            self._phase[worker] = _DONE
            return
        self._phase[worker] = _COMPUTING
        self._steps_left[worker] = self._interval_length(version + 1)
        self._clock[worker] = at_time
        self._schedule_step(worker)

    def _schedule_step(self, worker: int) -> None:
        version = self._version[worker]
        length = self._interval_length(version + 1)
        t = version * self.tau + (length - self._steps_left[worker] + 1)
        delay = float(
            self.dep.worker_devices[worker].sample_iterations(1, self.rng)[0]
        )
        self.queue.push(
            self._clock[worker] + delay, EVENT_WORKER_STEP, worker=worker, t=t
        )

    def _worker_up(self, t: int, worker: int) -> bool:
        if self.faults is None:
            return True
        if t not in self._worker_masks:
            self._worker_masks[t] = self.faults.worker_mask(t)
        mask = self._worker_masks[t]
        return mask is None or bool(mask[worker])

    def _on_worker_step(self, event: Event) -> None:
        worker = event.data["worker"]
        if self._phase[worker] != _COMPUTING:
            return
        t = event.data["t"]
        self._clock[worker] = event.time
        if self._worker_up(t, worker):
            loss = self.client.local_step(worker, t)
            if not np.isfinite(loss):
                self.diverged_at = t
                self.diverged_loss = float(loss)
                if self.stop_on_divergence:
                    self._aborted = True
                    return
        self._steps_left[worker] -= 1
        if self._steps_left[worker] > 0:
            self._schedule_step(worker)
        else:
            self._send_upload(worker, event.time)

    # ------------------------------------------------------------------
    # Uploads and the per-group message buffer
    # ------------------------------------------------------------------
    def _send_upload(self, worker: int, time: float) -> None:
        group = int(self._group_of[worker])
        self._phase[worker] = _WAITING
        self.uploads_sent += 1
        retries = 0
        failed = False
        stale_forced = False
        if self.faults is not None:
            outcome = self.faults.transfer_outcome(1)
            retries = outcome.retries
            # Duplicates are billed (the wire moved them) but have no
            # numeric effect on an idempotent state upload.
            self._pending_transfers[group] += outcome.duplicates
            failed = bool(outcome.failed)
            if not failed:
                flags = self.faults.stale_flags(1)
                stale_forced = flags is not None and bool(flags[0])
        self._pending_transfers[group] += 1 + retries
        if failed:
            self._lost[group].add(worker)
            self._maybe_force_close(group, time)
            return
        delay = self._upload_link.transfer_time(self.dep.payload_bytes,
                                                self.rng)
        if retries:
            wait = DEFAULT_RETRY_POLICY.timeout_seconds
            for _ in range(retries):
                delay += wait + self._upload_link.transfer_time(
                    self.dep.payload_bytes, self.rng
                )
                wait *= DEFAULT_RETRY_POLICY.backoff_factor
        self._inflight[group].add(worker)
        self.queue.push(
            time + delay,
            EVENT_UPLOAD_ARRIVED,
            worker=worker,
            group=group,
            version=self._version[worker],
            stale=stale_forced,
        )

    def _on_upload_arrived(self, event: Event) -> None:
        worker = event.data["worker"]
        group = event.data["group"]
        version = event.data["version"]
        self._inflight[group].discard(worker)
        round_index = self._next_round[group]
        if round_index > self.total_rounds:
            # The group finished while this upload was in flight.
            self._phase[worker] = _DONE
            return
        if version == round_index - 1 and not event.data["stale"]:
            self._fresh[group][worker] = event.time
            if (
                not self._closing[group]
                and len(self._fresh[group]) >= self._needed[group]
            ):
                self._closing[group] = True
                self.queue.push(event.time, EVENT_QUORUM_MET, group=group)
            else:
                self._maybe_force_close(group, event.time)
            return
        # Late (or fault-stale) upload: buffer it with its version,
        # resynchronize the sender to the current model and let it
        # resume — the per-node mailbox of asynchronous FL.
        if event.data["stale"] and version == round_index - 1:
            # A fault-stale payload carries an old model even though it
            # was produced this round; demote its version accordingly.
            version = round_index - 1 - max(
                1, self.faults.plan.staleness_intervals
            )
        self.client.snapshot_stale(worker)
        self._stale[group][worker] = version
        # The quorum closed without this upload — record it for the next
        # cloud round even if a fresh re-upload later supersedes it.
        self._stale_since_cloud[group].add(worker)
        if group in self._cloud_wait:
            # The group sits at the cloud barrier: hold the worker, the
            # cloud broadcast will resynchronize it.
            self._cloud_wait[group][1].add(worker)
            return
        self.client.resync_worker(worker, group)
        self._version[worker] = round_index - 1
        download = self._upload_link.transfer_time(self.dep.payload_bytes,
                                                   self.rng)
        self._begin_interval(worker, event.time + download)

    def _maybe_force_close(self, group: int, time: float) -> None:
        """Close a round that can no longer reach its quorum.

        With message loss, every member can end up waiting with nothing
        in flight; the round then closes on whatever arrived so the
        lost workers can be re-synchronized (deadlock avoidance).
        """
        if self._closing[group] or group in self._cloud_wait:
            return
        if self._next_round[group] > self.total_rounds:
            return
        if len(self._fresh[group]) >= self._needed[group]:
            return
        if self._inflight[group]:
            return
        if any(
            self._phase[w] == _COMPUTING for w in self.groups[group]
        ):
            return
        self._closing[group] = True
        self.queue.push(time, EVENT_QUORUM_MET, group=group, forced=True)

    # ------------------------------------------------------------------
    # Round closure
    # ------------------------------------------------------------------
    def _on_quorum_met(self, event: Event) -> None:
        group = event.data["group"]
        self._closing[group] = False
        round_index = self._next_round[group]
        fresh = self._fresh[group]
        fresh_ids = sorted(fresh)
        start = max(fresh.values()) if fresh else event.time
        finish = start + self._group_device.sample_aggregation(self.rng)

        dark = False
        if self.faults is not None and not self.flat:
            mask = self.faults.edge_mask(round_index)
            dark = mask is not None and not mask[group]

        # Fold the message buffer: a fresh re-upload supersedes the same
        # worker's buffered stale one.
        stale_pairs = [
            (w, round_index - 1 - v)
            for w, v in sorted(self._stale[group].items())
            if w not in fresh
        ]
        receivers = tuple(sorted(set(fresh_ids) | self._lost[group]))
        pending = self._pending_transfers[group]

        if dark:
            # Dark edge: nothing aggregates. Fresh arrivals are demoted
            # to the stale buffer (their work returns next round) and
            # everyone at the barrier resumes from the last distributed
            # model.
            self.faults.note_round("skipped")
            for w in fresh_ids:
                self.client.snapshot_stale(w)
                self._stale[group][w] = round_index - 1
                self._stale_since_cloud[group].add(w)
            self.client.close_round(
                group, round_index, (), (), receivers, pending, dark=True
            )
            included: tuple[int, ...] = ()
            stale_recorded: tuple[int, ...] = ()
        else:
            if self.faults is not None:
                pristine = (
                    len(fresh_ids) == len(self.groups[group])
                    and not stale_pairs
                )
                self.faults.note_round(
                    "pristine" if pristine else "degraded"
                )
            self.client.close_round(
                group,
                round_index,
                tuple(fresh_ids),
                tuple(stale_pairs),
                receivers,
                pending,
                dark=False,
            )
            for w, s in stale_pairs:
                self.stale_log.append((group, round_index, w, s))
                self._stale_since_cloud[group].add(w)
            self._stale[group] = {}
            included = tuple(fresh_ids)
            stale_recorded = tuple(w for w, _ in stale_pairs)

        member_set = set(receivers)
        late = tuple(
            int(w) for w in self.groups[group]
            if w not in member_set and self._phase[w] != _DONE
        )
        self._stale_since_cloud[group].update(late)
        self._edge_records.append(
            EdgeRoundRecord(
                edge=group,
                round_index=round_index,
                start_time=float(start),
                finish_time=float(finish),
                workers_included=included,
                workers_late=late,
                workers_stale=stale_recorded,
            )
        )

        monitor = get_monitor()
        if monitor.enabled:
            # Quorum wait: how long the round held its first arrival
            # before enough fresh uploads closed it.
            wait = (start - min(fresh.values())) if fresh else None
            data = {
                "group": group,
                "round": round_index,
                "fresh": len(included),
                "members": len(self.groups[group]),
                "staleness": [int(s) for _, s in stale_pairs],
                "forced": bool(event.data.get("forced")),
                "dark": dark,
                "receivers": len(receivers),
                "transfers": int(pending),
            }
            if wait is not None:
                data["quorum_wait"] = float(wait)
            hook = getattr(self.client, "monitor_round_data", None)
            if hook is not None:
                data.update(hook(group, round_index))
            monitor.emit(
                "edge_round",
                iteration=min(round_index * self.tau, self.total_iterations),
                tier="cloud" if self.flat else "edge",
                sim_time=float(finish),
                **data,
            )

        self._fresh[group] = {}
        self._lost[group] = set()
        self._pending_transfers[group] = 0
        self._next_round[group] = round_index + 1

        if not self.flat and round_index % self.pi == 0:
            # Cloud barrier: hold the downloads until the sync.
            ready = finish + self.dep.wan.transfer_time(
                self.dep.payload_bytes, self.rng
            )
            self._cloud_wait[group] = (ready, set(receivers))
            if len(self._cloud_wait) == self.num_groups:
                cloud_start = max(
                    ready for ready, _ in self._cloud_wait.values()
                )
                self.queue.push(
                    cloud_start,
                    EVENT_CLOUD_SYNC,
                    index=self._cloud_round + 1,
                )
            return
        for w in receivers:
            self._version[w] = round_index
            download = self._upload_link.transfer_time(
                self.dep.payload_bytes, self.rng
            )
            self._begin_interval(w, finish + download)
        self._completed[group] = round_index
        self._notify(finish)

    # ------------------------------------------------------------------
    # Cloud synchronization
    # ------------------------------------------------------------------
    def _on_cloud_sync(self, event: Event) -> None:
        index = event.data["index"]
        start = event.time
        finish = start + self.dep.cloud_device.sample_aggregation(self.rng)
        all_receivers = sorted(
            set().union(*(recv for _, recv in self._cloud_wait.values()))
        )
        self.client.cloud_sync(index, tuple(all_receivers))
        stale_ids = sorted(set().union(*self._stale_since_cloud))
        self._cloud_records.append(
            CloudRoundRecord(
                round_index=index,
                start_time=float(start),
                finish_time=float(finish),
                edges_included=tuple(range(self.num_groups)),
                stale_uploads=tuple(int(w) for w in stale_ids),
            )
        )
        monitor = get_monitor()
        if monitor.enabled:
            monitor.emit(
                "cloud_round",
                iteration=min(
                    index * self.tau * self.pi, self.total_iterations
                ),
                tier="cloud",
                sim_time=float(finish),
                round=index,
                edges=self.num_groups,
                stale_uploads=len(stale_ids),
                receivers=len(all_receivers),
            )
        for group in range(self.num_groups):
            self._stale_since_cloud[group] = set()
            boundary = self._next_round[group] - 1
            _, receivers = self._cloud_wait[group]
            wan_down = self.dep.wan.transfer_time(
                self.dep.payload_bytes, self.rng
            )
            for w in sorted(receivers):
                self._version[w] = boundary
                lan_down = self.dep.lan.transfer_time(
                    self.dep.payload_bytes, self.rng
                )
                self._begin_interval(w, finish + wan_down + lan_down)
            self._completed[group] = boundary
        self._cloud_wait = {}
        self._cloud_round = index
        self._notify(finish)

    # ------------------------------------------------------------------
    # Round-barrier notifications
    # ------------------------------------------------------------------
    def _notify(self, time: float) -> None:
        target = min(self._completed)
        while self._notified < target:
            self._notified += 1
            self.client.round_complete(self._notified, time)

    # ------------------------------------------------------------------
    # Durable snapshots (checkpoint/restore)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot of the complete engine state.

        Captures everything :meth:`run` consults — worker phases and
        clocks, per-group round buffers, the event heap, the simulation
        RNG and the round records — so a fresh runner restored via
        :meth:`load_state_dict` and run with ``resume=True`` replays the
        remaining events bit-for-bit.
        """
        return {
            "clock": self._clock.tolist(),
            "phase": list(self._phase),
            "version": list(self._version),
            "steps_left": list(self._steps_left),
            "fresh": [
                {str(w): float(t) for w, t in group.items()}
                for group in self._fresh
            ],
            "stale": [
                {str(w): int(v) for w, v in group.items()}
                for group in self._stale
            ],
            "lost": [sorted(int(w) for w in s) for s in self._lost],
            "inflight": [sorted(int(w) for w in s) for s in self._inflight],
            "pending_transfers": list(self._pending_transfers),
            "closing": list(self._closing),
            "next_round": list(self._next_round),
            "completed": list(self._completed),
            "stale_since_cloud": [
                sorted(int(w) for w in s) for s in self._stale_since_cloud
            ],
            "cloud_wait": {
                str(g): [float(ready), sorted(int(w) for w in recv)]
                for g, (ready, recv) in self._cloud_wait.items()
            },
            "cloud_round": self._cloud_round,
            "notified": self._notified,
            "worker_masks": {
                str(t): None if mask is None else mask.tolist()
                for t, mask in self._worker_masks.items()
            },
            "queue": self.queue.state_dict(),
            "stale_log": [list(entry) for entry in self.stale_log],
            "uploads_sent": self.uploads_sent,
            "last_event_time": self.last_event_time,
            "diverged_at": self.diverged_at,
            "diverged_loss": self.diverged_loss,
            "edge_records": [
                {
                    "edge": r.edge,
                    "round_index": r.round_index,
                    "start_time": r.start_time,
                    "finish_time": r.finish_time,
                    "workers_included": list(r.workers_included),
                    "workers_late": list(r.workers_late),
                    "workers_stale": list(r.workers_stale),
                }
                for r in self._edge_records
            ],
            "cloud_records": [
                {
                    "round_index": r.round_index,
                    "start_time": r.start_time,
                    "finish_time": r.finish_time,
                    "edges_included": list(r.edges_included),
                    "stale_uploads": list(r.stale_uploads),
                }
                for r in self._cloud_records
            ],
            "rng": self.rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this runner."""
        self._clock = np.asarray(state["clock"], dtype=float)
        self._phase = [int(p) for p in state["phase"]]
        self._version = [int(v) for v in state["version"]]
        self._steps_left = [int(s) for s in state["steps_left"]]
        self._fresh = [
            {int(w): float(t) for w, t in group.items()}
            for group in state["fresh"]
        ]
        self._stale = [
            {int(w): int(v) for w, v in group.items()}
            for group in state["stale"]
        ]
        self._lost = [{int(w) for w in s} for s in state["lost"]]
        self._inflight = [{int(w) for w in s} for s in state["inflight"]]
        self._pending_transfers = [
            int(n) for n in state["pending_transfers"]
        ]
        self._closing = [bool(c) for c in state["closing"]]
        self._next_round = [int(r) for r in state["next_round"]]
        self._completed = [int(r) for r in state["completed"]]
        self._stale_since_cloud = [
            {int(w) for w in s} for s in state["stale_since_cloud"]
        ]
        self._cloud_wait = {
            int(g): (float(ready), {int(w) for w in recv})
            for g, (ready, recv) in state["cloud_wait"].items()
        }
        self._cloud_round = int(state["cloud_round"])
        self._notified = int(state["notified"])
        self._worker_masks = {
            int(t): None if mask is None else np.asarray(mask, dtype=bool)
            for t, mask in state["worker_masks"].items()
        }
        self.queue.load_state_dict(state["queue"])
        self.stale_log = [
            tuple(int(x) for x in entry) for entry in state["stale_log"]
        ]
        self.uploads_sent = int(state["uploads_sent"])
        self.last_event_time = float(state["last_event_time"])
        raw = state["diverged_at"]
        self.diverged_at = None if raw is None else int(raw)
        self.diverged_loss = float(state["diverged_loss"])
        self._edge_records = [
            EdgeRoundRecord(
                edge=int(r["edge"]),
                round_index=int(r["round_index"]),
                start_time=float(r["start_time"]),
                finish_time=float(r["finish_time"]),
                workers_included=tuple(
                    int(w) for w in r["workers_included"]
                ),
                workers_late=tuple(int(w) for w in r["workers_late"]),
                workers_stale=tuple(int(w) for w in r["workers_stale"]),
            )
            for r in state["edge_records"]
        ]
        self._cloud_records = [
            CloudRoundRecord(
                round_index=int(r["round_index"]),
                start_time=float(r["start_time"]),
                finish_time=float(r["finish_time"]),
                edges_included=tuple(int(e) for e in r["edges_included"]),
                stale_uploads=tuple(int(w) for w in r["stale_uploads"]),
            )
            for r in state["cloud_records"]
        ]
        self.rng.bit_generator.state = state["rng"]
        # Don't immediately re-save the round we restored from.
        self._ckpt_notified = self._notified
