"""Observability for the federated runtime: spans, counters, traffic.

The subsystem has three parts (see ``docs/architecture.md`` § 9):

* :mod:`repro.telemetry.tracer` — the process-local :class:`Tracer`
  with nestable monotonic-clock spans, counters and histograms, plus
  the module-level active-tracer switch.  Disabled (the default) it is
  a strict no-op: the hot paths see the shared :data:`NULL_TRACER`.
* :mod:`repro.telemetry.ledger` — :class:`CommLedger`, the per-run
  communication accountant attached to every
  :class:`~repro.metrics.history.TrainingHistory`; byte totals are
  closed-form functions of the recorded events.
* :mod:`repro.telemetry.reporting` — renders a traced run as the
  ``repro trace`` per-phase/bytes breakdown.

Typical use::

    from repro import telemetry

    with telemetry.tracing() as tracer:
        history = run_single("HierAdMo", config)
    print(telemetry.format_trace_report(tracer, history))
"""

from repro.telemetry.ledger import BYTES_PER_PARAM, CommLedger
from repro.telemetry.reporting import format_bytes, format_trace_report
from repro.telemetry.tracer import (
    NULL_TRACER,
    Histogram,
    NullTracer,
    SpanRecord,
    SpanStats,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "SpanStats",
    "Histogram",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "tracing",
    "CommLedger",
    "BYTES_PER_PARAM",
    "format_trace_report",
    "format_bytes",
]
