"""Communication accounting: one ledger per training run.

Every federated algorithm announces its tier traffic through a
:class:`CommLedger` attached to the run's
:class:`~repro.metrics.history.TrainingHistory`:

* a **round** is one scheduled synchronization (the paper's "edge
  aggregation" / "cloud aggregation" — what the figures put on the
  x-axis);
* a **transfer** is one flat-vector move over one link: a worker upload,
  an edge download, an edge→cloud upload, …  Rounds fan out into
  transfers (an edge round over ``N`` workers with redistribution is
  ``2·N`` worker↔edge transfers).

Bytes are *derived*, never stored: every transfer moves exactly
``dim × bytes_per_param × payload_multiplier`` bytes (the model vector,
scaled by the algorithm's declared payload — 2.0 for momentum shippers
that move model *and* momentum state).  Because
``worker_edge_bytes``/``edge_cloud_bytes`` are closed-form properties of
the event counters, the byte totals can never drift from the events:

    bytes = events × dim × bytes_per_param × payload_multiplier

Compressed uplinks (``QuantizedHierFAVG``) are the exception that proves
the rule: the ledger still counts their *logical* exchanges at full
payload (that is what the round/traffic comparisons in the paper use),
while the actual wire bytes after compression stay in the algorithm's
own ``uplink_payload_bytes`` accumulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.tracer import get_tracer

__all__ = ["CommLedger", "BYTES_PER_PARAM"]

# The runtime trains in float64 throughout.
BYTES_PER_PARAM = 8


@dataclass
class CommLedger:
    """Per-run communication accounting across both tiers."""

    dim: int = 0
    bytes_per_param: int = BYTES_PER_PARAM
    payload_multiplier: float = 1.0
    worker_edge_rounds: int = 0
    edge_cloud_rounds: int = 0
    worker_edge_events: int = 0
    edge_cloud_events: int = 0

    def configure(self, *, dim: int, payload_multiplier: float) -> None:
        """Set the payload geometry (called by ``FLAlgorithm.run``)."""
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if payload_multiplier <= 0:
            raise ValueError(
                f"payload_multiplier must be positive, got {payload_multiplier}"
            )
        self.dim = int(dim)
        self.payload_multiplier = float(payload_multiplier)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_worker_edge(self, transfers: int, *, rounds: int = 1) -> None:
        """Record worker↔edge traffic: ``transfers`` vector moves.

        ``rounds`` counts scheduled edge aggregations (0 for incidental
        traffic such as the post-cloud broadcast down to workers).
        """
        self.worker_edge_events += int(transfers)
        self.worker_edge_rounds += int(rounds)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("comm.worker_edge.transfers", transfers)
            tracer.count("comm.worker_edge.bytes", transfers * self.vector_bytes)

    def record_edge_cloud(self, transfers: int, *, rounds: int = 1) -> None:
        """Record edge↔cloud (or worker↔cloud, for two-tier) traffic."""
        self.edge_cloud_events += int(transfers)
        self.edge_cloud_rounds += int(rounds)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("comm.edge_cloud.transfers", transfers)
            tracer.count("comm.edge_cloud.bytes", transfers * self.vector_bytes)

    # ------------------------------------------------------------------
    # Derived quantities (closed form — cannot drift from the events)
    # ------------------------------------------------------------------
    @property
    def vector_bytes(self) -> float:
        """Bytes moved by a single transfer: dim × width × multiplier."""
        return self.dim * self.bytes_per_param * self.payload_multiplier

    @property
    def worker_edge_bytes(self) -> float:
        return self.worker_edge_events * self.vector_bytes

    @property
    def edge_cloud_bytes(self) -> float:
        return self.edge_cloud_events * self.vector_bytes

    @property
    def total_bytes(self) -> float:
        return self.worker_edge_bytes + self.edge_cloud_bytes

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form; bytes included for human readers only."""
        return {
            "dim": self.dim,
            "bytes_per_param": self.bytes_per_param,
            "payload_multiplier": self.payload_multiplier,
            "worker_edge_rounds": self.worker_edge_rounds,
            "edge_cloud_rounds": self.edge_cloud_rounds,
            "worker_edge_events": self.worker_edge_events,
            "edge_cloud_events": self.edge_cloud_events,
            "worker_edge_bytes": self.worker_edge_bytes,
            "edge_cloud_bytes": self.edge_cloud_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CommLedger":
        """Inverse of :meth:`to_dict` (derived bytes are recomputed)."""
        return cls(
            dim=int(payload.get("dim", 0)),
            bytes_per_param=int(payload.get("bytes_per_param", BYTES_PER_PARAM)),
            payload_multiplier=float(payload.get("payload_multiplier", 1.0)),
            worker_edge_rounds=int(payload.get("worker_edge_rounds", 0)),
            edge_cloud_rounds=int(payload.get("edge_cloud_rounds", 0)),
            worker_edge_events=int(payload.get("worker_edge_events", 0)),
            edge_cloud_events=int(payload.get("edge_cloud_events", 0)),
        )
