"""Process-local span tracer: timings, counters and histograms.

One :class:`Tracer` instance records everything a federated run emits:

* **spans** — nestable timed regions (``with tracer.span("edge_agg"):``)
  measured on the monotonic clock (:func:`time.perf_counter`), recorded
  with their parent span and nesting depth, and aggregated per name into
  count/total/min/max statistics;
* **counters** — monotonically accumulated numbers
  (``tracer.count("comm.worker_edge.transfers", 8)``);
* **histograms** — value distributions
  (``tracer.observe("adaptive.gamma", 0.42)``) with count/total/min/max
  and on-demand percentiles.

Tracing is *off by default*.  The module-level active tracer starts as
:data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
manager and whose ``count``/``observe`` do nothing — no dict churn, no
allocation, no clock reads — so instrumented hot paths cost one
attribute lookup when tracing is disabled.  Code that instruments a
*per-oracle-call* region additionally guards on ``tracer.enabled`` so
the disabled path executes zero extra context managers (see
``repro.nn.supervised``); per-iteration regions just use
``with get_tracer().span(...)`` directly.

Spans are exception-safe: a span body that raises still records its
duration and unwinds the nesting stack (the ``with`` protocol guarantees
``__exit__`` runs).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "SpanRecord",
    "SpanStats",
    "Histogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "tracing",
]


@dataclass(slots=True)
class SpanRecord:
    """One finished span: where time went, and under which parent."""

    name: str
    start: float  # seconds since the tracer's epoch (monotonic clock)
    duration: float  # seconds
    parent: str | None
    depth: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "parent": self.parent,
            "depth": self.depth,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            parent=payload.get("parent"),
            depth=int(payload.get("depth", 0)),
        )


@dataclass(slots=True)
class SpanStats:
    """Aggregated per-name span statistics."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
        }


class Histogram:
    """Value distribution: streaming moments plus the raw values.

    Raw values are kept (traced runs are short — thousands of
    observations, not millions) so percentiles are exact.
    """

    __slots__ = ("values", "total", "min", "max")

    def __init__(self) -> None:
        self.values: list[float] = []
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.values.append(value)
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank), q in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self.values:
            raise ValueError("empty histogram has no percentiles")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.values else 0.0,
            "max": self.max if self.values else 0.0,
            "mean": self.mean,
        }


class _Span:
    """Active span context manager (records itself on exit)."""

    __slots__ = ("_tracer", "name", "_start", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self.name = name

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self.name)
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        duration = tracer._clock() - self._start
        tracer._stack.pop()
        tracer._finish(
            SpanRecord(
                name=self.name,
                start=self._start - tracer._epoch,
                duration=duration,
                parent=self._parent,
                depth=self._depth,
            )
        )
        return False


class _NullSpan:
    """Shared no-op span: the entire disabled-tracing span protocol."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is installed by
    default; hot paths check ``tracer.enabled`` (a plain class attribute)
    when even a no-op context manager per call would be too much.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: spans, counters and histograms.

    ``max_records`` bounds the per-span-record memory: once reached,
    further spans still update the per-name aggregate statistics but the
    individual records are dropped (``dropped`` counts them), so a long
    run cannot exhaust memory while its phase breakdown stays exact.
    """

    enabled = True

    def __init__(self, *, clock=time.perf_counter, max_records: int = 250_000):
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self._clock = clock
        self._epoch = clock()
        self.max_records = int(max_records)
        self.records: list[SpanRecord] = []
        self.span_stats: dict[str, SpanStats] = {}
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._stack: list[str] = []

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------
    def span(self, name: str) -> _Span:
        """Timed region as a context manager; nests under the active span."""
        return _Span(self, name)

    def count(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto the named counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def _finish(self, record: SpanRecord) -> None:
        stats = self.span_stats.get(record.name)
        if stats is None:
            stats = self.span_stats[record.name] = SpanStats()
        stats.add(record.duration)
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            # Counted rather than silently discarded: the drop total
            # travels with the counters into summaries and reports.
            self.count("telemetry.dropped")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Span records discarded after ``max_records`` was reached."""
        return int(self.counters.get("telemetry.dropped", 0))

    @property
    def active_span(self) -> str | None:
        """Name of the innermost span currently open (None outside spans)."""
        return self._stack[-1] if self._stack else None

    def top_spans(self, k: int = 5) -> list[SpanRecord]:
        """The ``k`` slowest recorded spans, slowest first."""
        return sorted(self.records, key=lambda r: r.duration, reverse=True)[:k]

    def summary(self) -> dict:
        """JSON-able aggregate view: span stats, counters, histograms."""
        return {
            "spans": {
                name: stats.to_dict()
                for name, stats in sorted(self.span_stats.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "records": len(self.records),
            "dropped": self.dropped,
        }


# ----------------------------------------------------------------------
# Module-level active tracer
# ----------------------------------------------------------------------
_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide active tracer (the null tracer when disabled)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer (None → the null tracer)."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER
    return _active


def enable(**kwargs) -> Tracer:
    """Install (and return) a fresh recording :class:`Tracer`."""
    tracer = Tracer(**kwargs)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Restore the no-op null tracer."""
    set_tracer(NULL_TRACER)


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Scoped tracing: install a tracer, restore the previous one on exit.

    ::

        with telemetry.tracing() as tracer:
            history = run_single("HierAdMo", config)
        print(tracer.summary())
    """
    installed = tracer if tracer is not None else Tracer()
    previous = _active
    set_tracer(installed)
    try:
        yield installed
    finally:
        set_tracer(previous)
