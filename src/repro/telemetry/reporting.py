"""Render a traced run as the ``repro trace`` breakdown tables.

Three sections: per-phase wall-clock (where the run's time went, by span
name), the communication ledger (events and bytes per tier), and the
top-k slowest individual spans.  Pure string formatting — all numbers
come from the :class:`~repro.telemetry.tracer.Tracer` and the history's
:class:`~repro.telemetry.ledger.CommLedger`.
"""

from __future__ import annotations

from repro.telemetry.tracer import Tracer

__all__ = ["format_trace_report", "format_bytes"]

# Span names printed first, in pipeline order; anything else follows
# alphabetically (oracle.* sub-spans, adapt_gamma, user spans, ...).
PHASE_ORDER = ("worker_step", "edge_agg", "cloud_agg", "eval")


def format_bytes(num: float) -> str:
    """Human binary size (``12.3 MiB``); exact integer bytes below 1 KiB."""
    if num < 1024:
        return f"{num:.0f} B"
    for unit in ("KiB", "MiB", "GiB", "TiB"):
        num /= 1024.0
        if num < 1024:
            return f"{num:.2f} {unit}"
    return f"{num:.2f} PiB"


def _format_rows(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines


def _phase_section(tracer: Tracer, lines: list[str]) -> None:
    stats = tracer.span_stats
    if not stats:
        lines.append("(no spans recorded)")
        return
    # Share of wall-clock is computed against the top-level spans only,
    # so nested spans (oracle.* inside worker_step) don't double-count.
    top_level_total = sum(
        record.duration for record in tracer.records if record.depth == 0
    )
    ordered = [name for name in PHASE_ORDER if name in stats]
    ordered += sorted(name for name in stats if name not in PHASE_ORDER)
    rows = []
    for name in ordered:
        entry = stats[name]
        share = (
            f"{100.0 * entry.total / top_level_total:5.1f}%"
            if top_level_total > 0
            else "    -"
        )
        rows.append([
            name,
            str(entry.count),
            f"{entry.total:.4f}s",
            f"{entry.mean * 1e3:.3f}ms",
            f"{entry.max * 1e3:.3f}ms",
            share,
        ])
    lines.extend(
        _format_rows(
            ["phase", "count", "total", "mean", "max", "share"], rows
        )
    )
    if tracer.dropped:
        lines.append(
            f"(span record cap reached: {tracer.dropped} records dropped; "
            "aggregates above remain exact)"
        )


def _comm_section(ledger, lines: list[str]) -> None:
    lines.append(
        f"payload: dim={ledger.dim} x {ledger.bytes_per_param} B x "
        f"multiplier {ledger.payload_multiplier:g} = "
        f"{format_bytes(ledger.vector_bytes)} per transfer"
    )
    rows = [
        [
            "worker<->edge",
            str(ledger.worker_edge_rounds),
            str(ledger.worker_edge_events),
            f"{ledger.worker_edge_bytes:.0f}",
            format_bytes(ledger.worker_edge_bytes),
        ],
        [
            "edge<->cloud",
            str(ledger.edge_cloud_rounds),
            str(ledger.edge_cloud_events),
            f"{ledger.edge_cloud_bytes:.0f}",
            format_bytes(ledger.edge_cloud_bytes),
        ],
        [
            "total",
            "",
            str(ledger.worker_edge_events + ledger.edge_cloud_events),
            f"{ledger.total_bytes:.0f}",
            format_bytes(ledger.total_bytes),
        ],
    ]
    lines.extend(
        _format_rows(["tier", "rounds", "transfers", "bytes", ""], rows)
    )


def _fault_section(fault_summary: dict, lines: list[str]) -> None:
    rounds = fault_summary.get("rounds", {})
    lines.append(
        "rounds: "
        f"{rounds.get('pristine', 0)} pristine, "
        f"{rounds.get('degraded', 0)} degraded, "
        f"{rounds.get('skipped', 0)} skipped "
        f"(of {rounds.get('total', 0)})"
    )
    events = fault_summary.get("events", {})
    rows = [
        [name, str(value)]
        for name, value in sorted(events.items())
        if value
    ]
    if rows:
        lines.extend(_format_rows(["event", "count"], rows))
    else:
        lines.append("(no fault events realized)")
    stale = fault_summary.get("stale_uploads")
    if stale:
        lines.append(
            "stale uploads: "
            f"{stale.get('uploads', 0)} "
            f"(from {len(stale.get('workers', ()))} workers) across "
            f"{stale.get('rounds_with_stale', 0)} of "
            f"{stale.get('cloud_rounds', 0)} cloud rounds"
        )


def _top_spans_section(tracer: Tracer, k: int, lines: list[str]) -> None:
    top = tracer.top_spans(k)
    if not top:
        lines.append("(no spans recorded)")
        return
    rows = [
        [
            f"{record.duration * 1e3:.3f}ms",
            record.name,
            f"@{record.start:.4f}s",
            f"under {record.parent}" if record.parent else "top-level",
        ]
        for record in top
    ]
    lines.extend(_format_rows(["duration", "span", "start", "context"], rows))


def format_trace_report(tracer: Tracer, history=None, *, top: int = 5) -> str:
    """The full ``repro trace`` text: phases, bytes, slowest spans.

    ``history``, when given, contributes its communication ledger and
    run header; ``top`` controls the slowest-spans listing length.
    """
    lines: list[str] = []
    if history is not None:
        lines.append(
            f"trace: {history.algorithm}, "
            f"{history.iterations[-1] if history.iterations else 0} iterations"
        )
        lines.append("")
    lines.append("== per-phase wall clock ==")
    _phase_section(tracer, lines)
    if history is not None:
        lines.append("")
        lines.append("== communication ledger ==")
        _comm_section(history.comm, lines)
    if history is not None and history.fault_summary is not None:
        lines.append("")
        lines.append("== fault injection ==")
        _fault_section(history.fault_summary, lines)
    lines.append("")
    lines.append(f"== top {top} slowest spans ==")
    _top_spans_section(tracer, top, lines)
    if tracer.counters:
        lines.append("")
        lines.append("== counters ==")
        for name, value in sorted(tracer.counters.items()):
            lines.append(f"{name} = {value:g}")
    return "\n".join(lines)
