"""Live run monitoring: event stream, metrics registry, health alerts.

The streaming counterpart of :mod:`repro.telemetry` — where the tracer
answers "what happened" after a run, the monitoring layer answers "is
this run healthy" while it happens.  See ``docs/architecture.md`` §13
for the stream schema and monitor lifecycle.
"""

from repro.monitoring.dashboard import render_dashboard
from repro.monitoring.events import (
    ALERT,
    CHECKPOINT_RESTORED,
    CHECKPOINT_SAVED,
    CLOUD_ROUND,
    EDGE_ROUND,
    EVAL,
    EVENT_KINDS,
    RUN_END,
    RUN_START,
    RunEvent,
)
from repro.monitoring.health import (
    Alert,
    DivergenceMonitor,
    FaultBudgetMonitor,
    HealthMonitor,
    MonitorAbort,
    PlateauMonitor,
    QuorumStarvationMonitor,
    StalenessRunawayMonitor,
    default_monitors,
)
from repro.monitoring.monitor import (
    NULL_MONITOR,
    NullMonitor,
    RunMonitor,
    get_monitor,
    monitoring,
    set_monitor,
)
from repro.monitoring.registry import MetricsRegistry
from repro.monitoring.sinks import (
    CallbackSink,
    EventSink,
    JSONLStreamSink,
    RingBufferSink,
    load_events_jsonl,
)

__all__ = [
    "RunEvent",
    "EVENT_KINDS",
    "RUN_START",
    "EVAL",
    "EDGE_ROUND",
    "CLOUD_ROUND",
    "ALERT",
    "RUN_END",
    "CHECKPOINT_SAVED",
    "CHECKPOINT_RESTORED",
    "EventSink",
    "RingBufferSink",
    "JSONLStreamSink",
    "CallbackSink",
    "load_events_jsonl",
    "MetricsRegistry",
    "Alert",
    "MonitorAbort",
    "HealthMonitor",
    "DivergenceMonitor",
    "PlateauMonitor",
    "QuorumStarvationMonitor",
    "StalenessRunawayMonitor",
    "FaultBudgetMonitor",
    "default_monitors",
    "RunMonitor",
    "NullMonitor",
    "NULL_MONITOR",
    "get_monitor",
    "set_monitor",
    "monitoring",
    "render_dashboard",
]
