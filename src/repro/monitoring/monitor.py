"""The monitoring hub: event fan-out, metric folding, health checks.

Mirrors the tracer's active-instance pattern
(:mod:`repro.telemetry.tracer`): a module-level active monitor that
instrumented code fetches with :func:`get_monitor` and guards with the
``enabled`` flag.  The default is :data:`NULL_MONITOR`, whose ``emit``
is an unconditional no-op — an unmonitored run takes exactly one
attribute check per instrumentation point and stays bit-exact
(emission only ever *reads* algorithm state).

A live :class:`RunMonitor` does three things per event, in order:

1. folds the event into its :class:`~repro.monitoring.registry.MetricsRegistry`
   (latest accuracy/loss gauges, per-tier round counters, γ per edge,
   byte totals);
2. fans the event out to every sink;
3. offers the event to each health monitor; any returned
   :class:`~repro.monitoring.health.Alert` is recorded on
   ``monitor.alerts``, dispatched to the sinks as an ``alert`` event,
   counted in the registry, and — for monitors constructed with
   ``abort=True`` — escalated as :class:`MonitorAbort` so the run
   drivers can stop cleanly.  ``run_end`` events never escalate: the
   run is already over.

Use the :func:`monitoring` context manager for scoped installation::

    with monitoring(sinks=[JSONLStreamSink("run.jsonl")],
                    monitors=default_monitors()) as monitor:
        history = algorithm.run()
    print(monitor.registry.exposition())
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.monitoring.events import ALERT, RUN_END, RunEvent
from repro.monitoring.health import Alert, HealthMonitor, MonitorAbort
from repro.monitoring.registry import MetricsRegistry
from repro.monitoring.sinks import EventSink

__all__ = [
    "RunMonitor",
    "NullMonitor",
    "NULL_MONITOR",
    "get_monitor",
    "set_monitor",
    "monitoring",
]

# Eval-event payload keys folded into same-named gauges.
_EVAL_GAUGES = (
    ("accuracy", "repro_test_accuracy"),
    ("test_loss", "repro_test_loss"),
    ("train_loss", "repro_train_loss"),
    ("worker_edge_bytes", "repro_worker_edge_bytes"),
    ("edge_cloud_bytes", "repro_edge_cloud_bytes"),
    ("total_bytes", "repro_total_bytes"),
    ("peak_rss_bytes", "repro_peak_rss_bytes"),
)

# Population-round payload keys folded into same-named gauges.
_POPULATION_GAUGES = (
    ("registered", "repro_population_registered"),
    ("cohort", "repro_population_cohort"),
    ("materialized", "repro_population_materialized"),
    ("carried", "repro_population_carried"),
)


class RunMonitor:
    """Live event hub for one monitoring session."""

    enabled = True

    def __init__(
        self,
        sinks: tuple[EventSink, ...] | list[EventSink] = (),
        monitors: tuple[HealthMonitor, ...] | list[HealthMonitor] = (),
        registry: MetricsRegistry | None = None,
        clock=time.perf_counter,
    ):
        self.sinks = list(sinks)
        self.monitors = list(monitors)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alerts: list[Alert] = []
        self._clock = clock
        self._epoch = clock()
        self._seq = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        *,
        iteration: int = 0,
        tier: str = "",
        sim_time: float | None = None,
        **data,
    ) -> RunEvent:
        """Build, fold, fan out and health-check one event.

        Raises :class:`MonitorAbort` when an aborting health monitor
        fires on this event (never for ``run_end``).
        """
        event = RunEvent(
            kind=kind,
            seq=self._seq,
            wall_time=self._clock() - self._epoch,
            iteration=iteration,
            tier=tier,
            sim_time=sim_time,
            data=data,
        )
        self._seq += 1
        self._fold(event)
        for sink in self.sinks:
            sink.emit(event)
        escalate: Alert | None = None
        for health in self.monitors:
            alert = health.observe(event)
            if alert is None:
                continue
            self._record_alert(alert)
            if health.abort and escalate is None:
                escalate = alert
        if escalate is not None and kind != RUN_END:
            raise MonitorAbort(escalate)
        return event

    def close(self) -> None:
        """Close every sink; idempotent."""
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record_alert(self, alert: Alert) -> None:
        self.alerts.append(alert)
        self.registry.inc_counter(
            "repro_alerts_total", labels={"monitor": alert.monitor}
        )
        event = RunEvent(
            kind=ALERT,
            seq=self._seq,
            wall_time=alert.wall_time,
            iteration=alert.iteration,
            data=alert.to_dict(),
        )
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)

    def _fold(self, event: RunEvent) -> None:
        registry = self.registry
        registry.inc_counter("repro_events_total", labels={"kind": event.kind})
        if event.kind == "eval":
            registry.set_gauge("repro_iteration", event.iteration)
            for key, gauge in _EVAL_GAUGES:
                value = event.data.get(key)
                if value is not None:
                    registry.set_gauge(gauge, value)
        elif event.kind in ("edge_round", "cloud_round"):
            registry.inc_counter(
                "repro_rounds_total", labels={"tier": event.tier or event.kind}
            )
            for edge, gamma in (event.data.get("gammas") or {}).items():
                registry.set_gauge(
                    "repro_gamma", gamma, labels={"edge": edge}
                )
            if event.data.get("forced"):
                registry.inc_counter("repro_forced_closures_total")
            stale = event.data.get("staleness")
            if stale:
                registry.inc_counter("repro_stale_folds_total", len(stale))
            stale_uploads = event.data.get("stale_uploads")
            if stale_uploads:
                registry.inc_counter(
                    "repro_stale_uploads_total", stale_uploads
                )
        elif event.kind == "population_round":
            registry.inc_counter("repro_population_rounds_total")
            for key, gauge in _POPULATION_GAUGES:
                value = event.data.get(key)
                if value is not None:
                    registry.set_gauge(gauge, value)
        elif event.kind == "run_start":
            iterations = event.data.get("total_iterations")
            if iterations is not None:
                registry.set_gauge("repro_total_iterations", iterations)


class NullMonitor:
    """Disabled monitor: every instrumentation point short-circuits.

    ``emit`` is still callable (returns None, records nothing) so
    call sites may skip the ``enabled`` guard off the hot path.
    """

    enabled = False
    sinks: tuple = ()
    monitors: tuple = ()
    alerts: tuple = ()

    def emit(self, kind: str, **kwargs) -> None:
        return None

    def close(self) -> None:
        return None


NULL_MONITOR = NullMonitor()

_active: RunMonitor | NullMonitor = NULL_MONITOR


def get_monitor() -> RunMonitor | NullMonitor:
    """The active monitor (instrumented code calls this per block)."""
    return _active


def set_monitor(monitor: RunMonitor | NullMonitor | None) -> RunMonitor | NullMonitor:
    """Install ``monitor`` as active; ``None`` resets. Returns previous."""
    global _active
    previous = _active
    _active = NULL_MONITOR if monitor is None else monitor
    return previous


@contextmanager
def monitoring(
    sinks: tuple[EventSink, ...] | list[EventSink] = (),
    monitors: tuple[HealthMonitor, ...] | list[HealthMonitor] = (),
    registry: MetricsRegistry | None = None,
):
    """Install a fresh :class:`RunMonitor` for the ``with`` body.

    Restores the previously active monitor and closes the sinks on
    exit (including on exception / :class:`MonitorAbort`).
    """
    monitor = RunMonitor(sinks=sinks, monitors=monitors, registry=registry)
    previous = set_monitor(monitor)
    try:
        yield monitor
    finally:
        set_monitor(previous)
        monitor.close()
