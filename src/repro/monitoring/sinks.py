"""Pluggable destinations for the run-event stream.

A sink receives every :class:`~repro.monitoring.events.RunEvent` the
hub dispatches, in emission order.  Three implementations cover the
monitoring use cases:

* :class:`RingBufferSink` — bounded in-memory history (the dashboard's
  data source for in-process monitoring, and the cheap default for
  tests);
* :class:`JSONLStreamSink` — line-buffered streaming JSONL file: every
  event is a complete line the moment ``emit`` returns, so a concurrent
  ``repro monitor`` (or ``tail -f``) always reads whole records;
* :class:`CallbackSink` — arbitrary ``fn(event)`` for embedding.

Sinks must never mutate the event and must not raise on ``close`` being
called twice (run teardown paths overlap).
"""

from __future__ import annotations

from collections import deque
from pathlib import Path

from repro.monitoring.events import RunEvent

__all__ = [
    "EventSink",
    "RingBufferSink",
    "JSONLStreamSink",
    "CallbackSink",
    "load_events_jsonl",
]


class EventSink:
    """Abstract event destination."""

    def emit(self, event: RunEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; idempotent."""


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.events: deque[RunEvent] = deque(maxlen=self.capacity)
        self.emitted = 0

    def emit(self, event: RunEvent) -> None:
        self.events.append(event)
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Events that fell off the ring's old end."""
        return self.emitted - len(self.events)

    def snapshot(self) -> list[RunEvent]:
        """The buffered events, oldest first."""
        return list(self.events)


class JSONLStreamSink(EventSink):
    """Stream events to a JSONL file, one complete line per emit.

    The file is opened line-buffered, so each event reaches the OS as
    soon as it is emitted — a live ``repro monitor`` tailing the path
    sees every record without waiting for a block buffer to fill.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        # buffering=1: line buffered (flushed at each "\n").
        self._file = self.path.open("w", buffering=1, encoding="utf-8")
        self.emitted = 0

    def emit(self, event: RunEvent) -> None:
        if self._file is None:
            raise ValueError(f"sink for {self.path} is closed")
        self._file.write(event.to_json() + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class CallbackSink(EventSink):
    """Forward every event to a callable."""

    def __init__(self, fn):
        if not callable(fn):
            raise TypeError(f"callback must be callable, got {fn!r}")
        self.fn = fn

    def emit(self, event: RunEvent) -> None:
        self.fn(event)


def load_events_jsonl(path: str | Path) -> list[RunEvent]:
    """Read a (possibly still-growing) JSONL event stream.

    A truncated trailing line — the writer mid-emit — is skipped rather
    than raised on, so a live dashboard refresh never crashes on a
    partial record.
    """
    events: list[RunEvent] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(RunEvent.from_json(line))
        except ValueError:
            # Partial trailing record of a live stream.
            continue
    return events
