"""Render a run-event stream as a terminal dashboard.

:func:`render_dashboard` turns a list of
:class:`~repro.monitoring.events.RunEvent` records (typically loaded
from a streaming JSONL file with
:func:`~repro.monitoring.sinks.load_events_jsonl`) into one screenful
of text: header with run status, accuracy/loss sparklines, γ per edge,
per-tier byte totals and rates, a staleness/quorum panel, and the
active alerts.  The ``repro monitor`` CLI calls it in a refresh loop;
it is a pure function of the event list, so tests and notebooks can
call it on a finished stream just as well.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.metrics.ascii_plot import sparkline
from repro.monitoring.events import (
    ALERT,
    CLOUD_ROUND,
    EDGE_ROUND,
    EVAL,
    RUN_END,
    RUN_START,
    RunEvent,
)
from repro.telemetry.reporting import format_bytes

__all__ = ["render_dashboard"]

_SPARK_SEVERITY = {"critical": "!!", "warning": " !"}


def _downsample(values: list[float], width: int) -> list[float]:
    """Stride-sample a series to at most ``width`` points, keeping ends."""
    if len(values) <= width:
        return values
    step = (len(values) - 1) / (width - 1)
    return [values[round(i * step)] for i in range(width)]


def _fmt(value, spec: str = ".4f") -> str:
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return "--"
    return format(value, spec)


def _clock_line(evals: list[RunEvent]) -> str:
    if not evals:
        return ""
    last = evals[-1]
    parts = [f"wall {last.wall_time:.1f}s"]
    if last.sim_time is not None:
        parts.append(f"sim {last.sim_time:.1f}s")
    return "  ".join(parts)


def _rate_suffix(evals: list[RunEvent], key: str) -> str:
    """Byte rate over the last eval interval, on the sim clock if present."""
    if len(evals) < 2:
        return ""
    prev, last = evals[-2], evals[-1]
    if last.sim_time is not None and prev.sim_time is not None:
        dt = last.sim_time - prev.sim_time
    else:
        dt = last.wall_time - prev.wall_time
    db = (last.data.get(key) or 0) - (prev.data.get(key) or 0)
    if dt <= 0:
        return ""
    return f"  ({format_bytes(db / dt)}/s)"


def render_dashboard(events: list[RunEvent], width: int = 64) -> str:
    """One screenful of dashboard text for the given event stream."""
    if width < 16:
        raise ValueError(f"width must be >= 16, got {width}")
    if not events:
        return "(no events yet)\n"

    start = next((e for e in events if e.kind == RUN_START), None)
    end = next((e for e in events if e.kind == RUN_END), None)
    evals = [e for e in events if e.kind == EVAL]
    edge_rounds = [e for e in events if e.kind == EDGE_ROUND]
    cloud_rounds = [e for e in events if e.kind == CLOUD_ROUND]
    alerts = [e for e in events if e.kind == ALERT]

    lines: list[str] = []
    rule = "─" * width

    # Header -----------------------------------------------------------
    algorithm = (start.data.get("algorithm") if start else None) or "run"
    status = end.data.get("status", "finished") if end else "running"
    if end and end.data.get("aborted_by"):
        status = f"aborted by {end.data['aborted_by']}"
    iteration = max((e.iteration for e in events), default=0)
    total = start.data.get("total_iterations") if start else None
    progress = f"iter {iteration}" + (f"/{total}" if total else "")
    lines.append(f"{algorithm} · {status} · {progress}")
    clock = _clock_line(evals)
    if clock:
        lines.append(clock)
    lines.append(rule)

    # Accuracy / loss sparklines --------------------------------------
    accuracies = [e.data.get("accuracy") for e in evals]
    accuracies = [float(a) for a in accuracies if a is not None]
    if accuracies:
        spark = sparkline(_downsample(accuracies, width - 10))
        lines.append(f"accuracy  {spark}")
        lines.append(
            f"  latest {_fmt(accuracies[-1])}   best {_fmt(max(accuracies))}"
        )
    train_losses = [e.data.get("train_loss") for e in evals]
    train_losses = [float(v) for v in train_losses if v is not None]
    if any(math.isfinite(v) for v in train_losses):
        spark = sparkline(_downsample(train_losses, width - 10))
        finite = [v for v in train_losses if math.isfinite(v)]
        lines.append(f"trainloss {spark}")
        lines.append(f"  latest {_fmt(finite[-1])}")
    lines.append(rule)

    # γ per edge -------------------------------------------------------
    gamma_series: dict[str, list[float]] = {}
    for event in edge_rounds:
        for edge, gamma in (event.data.get("gammas") or {}).items():
            gamma_series.setdefault(str(edge), []).append(float(gamma))
    if gamma_series:
        lines.append("gamma per edge")
        for edge in sorted(gamma_series, key=lambda k: (len(k), k))[:8]:
            series = gamma_series[edge]
            spark = sparkline(_downsample(series, width - 24))
            lines.append(
                f"  edge {edge:>3} {spark} {series[-1]:.4f}"
            )
        lines.append(rule)

    # Communication ----------------------------------------------------
    if evals:
        last = evals[-1].data
        for key, label in (
            ("worker_edge_bytes", "worker→edge"),
            ("edge_cloud_bytes", "edge→cloud"),
            ("total_bytes", "total"),
        ):
            value = last.get(key)
            if value is None:
                continue
            lines.append(
                f"{label:<12} {format_bytes(value):>12}"
                f"{_rate_suffix(evals, key)}"
            )
        rss = last.get("peak_rss_bytes")
        if rss:
            lines.append(f"{'peak rss':<12} {format_bytes(rss):>12}")
        lines.append(rule)

    # Virtual population ----------------------------------------------
    pop_rounds = [e for e in events if e.kind == "population_round"]
    if pop_rounds:
        last = pop_rounds[-1].data
        lines.append(
            f"population: {last.get('registered', 0)} registered"
            f"  cohort {last.get('cohort', 0)}"
            f"  materialized {last.get('materialized', 0)}"
            f"  carried {last.get('carried', 0)}"
        )
        lines.append(rule)

    # Staleness / quorum ----------------------------------------------
    if edge_rounds or cloud_rounds:
        forced = sum(1 for e in edge_rounds if e.data.get("forced"))
        histogram = Counter(
            int(s)
            for e in edge_rounds
            for s in (e.data.get("staleness") or ())
        )
        stale_uploads = sum(
            int(e.data.get("stale_uploads") or 0) for e in cloud_rounds
        )
        lines.append(
            f"rounds: edge {len(edge_rounds)}  cloud {len(cloud_rounds)}"
            f"  forced {forced}  stale uploads {stale_uploads}"
        )
        if histogram:
            body = "  ".join(
                f"{age}r:{count}" for age, count in sorted(histogram.items())
            )
            lines.append(f"staleness folds  {body}")
        waits = [
            float(e.data["quorum_wait"])
            for e in edge_rounds
            if e.data.get("quorum_wait") is not None
        ]
        if waits:
            lines.append(
                f"quorum wait  mean {sum(waits) / len(waits):.2f}s"
                f"  max {max(waits):.2f}s"
            )
        lines.append(rule)

    # Alerts -----------------------------------------------------------
    if alerts:
        lines.append(f"alerts ({len(alerts)})")
        for event in alerts[-6:]:
            severity = event.data.get("severity", "warning")
            marker = _SPARK_SEVERITY.get(severity, " ?")
            monitor = event.data.get("monitor", "?")
            message = event.data.get("message", "")
            line = f"{marker} [{monitor}] iter {event.iteration}: {message}"
            lines.append(line[:width])
    else:
        lines.append("alerts: none")

    return "\n".join(lines) + "\n"
