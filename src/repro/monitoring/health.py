"""Health monitors: streaming run diagnosis with structured alerts.

A :class:`HealthMonitor` subscribes to the run-event stream through the
hub and answers one question per event: *is this run still healthy?*
When the answer is no it returns an :class:`Alert` — a structured
record that the hub fans out to every sink (as an ``alert`` event),
counts in the metrics registry, and attaches to the run's
:class:`~repro.metrics.history.TrainingHistory` (serialized with it).

A monitor constructed with ``abort=True`` additionally stops the run:
the hub raises :class:`MonitorAbort` after dispatching the alert, and
both drivers (lockstep ``FLAlgorithm.run`` and the event-driven
``AsyncExecutionMixin.run``) catch it, record a final evaluation point
and finish the history cleanly (``history.aborted_by`` names the
monitor) instead of burning the remaining iteration budget.

Monitors are stateful per run; build a fresh set per monitoring session
(:func:`default_monitors`).  Each one re-arms after the condition
clears, so a long run reports episodes, not one alert per event.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.monitoring.events import EDGE_ROUND, EVAL, RunEvent

__all__ = [
    "Alert",
    "MonitorAbort",
    "HealthMonitor",
    "DivergenceMonitor",
    "PlateauMonitor",
    "QuorumStarvationMonitor",
    "StalenessRunawayMonitor",
    "FaultBudgetMonitor",
    "default_monitors",
]


@dataclass(slots=True)
class Alert:
    """One health-monitor finding."""

    monitor: str
    severity: str  # "warning" | "critical"
    message: str
    iteration: int = 0
    wall_time: float = 0.0
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "monitor": self.monitor,
            "severity": self.severity,
            "message": self.message,
            "iteration": self.iteration,
            "wall_time": self.wall_time,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Alert":
        return cls(
            monitor=str(payload["monitor"]),
            severity=str(payload.get("severity", "warning")),
            message=str(payload.get("message", "")),
            iteration=int(payload.get("iteration", 0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            data=dict(payload.get("data", {})),
        )


class MonitorAbort(RuntimeError):
    """Raised by the hub when an aborting monitor fires.

    Carries the triggering :class:`Alert`; the run drivers catch it and
    end the run cleanly.
    """

    def __init__(self, alert: Alert):
        super().__init__(
            f"run aborted by monitor {alert.monitor!r}: {alert.message}"
        )
        self.alert = alert


class HealthMonitor:
    """Base class: observe events, return an :class:`Alert` or None."""

    name = "health"

    def __init__(self, *, abort: bool = False):
        self.abort = bool(abort)

    def observe(self, event: RunEvent) -> Alert | None:
        raise NotImplementedError

    def _alert(
        self,
        event: RunEvent,
        message: str,
        *,
        severity: str = "warning",
        **data,
    ) -> Alert:
        return Alert(
            monitor=self.name,
            severity=severity,
            message=message,
            iteration=event.iteration,
            wall_time=event.wall_time,
            data=data,
        )


class DivergenceMonitor(HealthMonitor):
    """Non-finite or exploding training loss.

    Fires (severity ``critical``) when an ``eval`` event carries a
    non-finite train/test loss, or a finite train loss more than
    ``explode_factor`` times the first finite train loss of the run.
    Fires once — a diverging run does not recover.
    """

    name = "divergence"

    def __init__(self, *, explode_factor: float = 1e3, abort: bool = False):
        super().__init__(abort=abort)
        if explode_factor <= 1.0:
            raise ValueError(
                f"explode_factor must be > 1, got {explode_factor}"
            )
        self.explode_factor = float(explode_factor)
        self._reference: float | None = None
        self._fired = False

    def observe(self, event: RunEvent) -> Alert | None:
        if event.kind != EVAL or self._fired:
            return None
        test = event.data.get("test_loss")
        if test is not None and not math.isfinite(test):
            self._fired = True
            return self._alert(
                event,
                f"non-finite test loss at iteration {event.iteration}",
                severity="critical",
                loss=float(test),
            )
        train = event.data.get("train_loss")
        # NaN train loss means "no measurement here" by repo convention
        # (iteration 0, abort-path evals) — only an infinity diverges.
        if train is None or math.isnan(train):
            return None
        if math.isinf(train):
            self._fired = True
            return self._alert(
                event,
                f"non-finite train loss at iteration {event.iteration}",
                severity="critical",
                loss=float(train),
            )
        if self._reference is None:
            # The first finite value anchors the explosion reference.
            self._reference = float(train)
            return None
        if abs(train) > self.explode_factor * max(abs(self._reference), 1e-12):
            self._fired = True
            return self._alert(
                event,
                f"train loss {train:.3g} exploded past "
                f"{self.explode_factor:g}x the initial {self._reference:.3g}",
                severity="critical",
                loss=float(train),
                reference=self._reference,
            )
        return None


class PlateauMonitor(HealthMonitor):
    """Test accuracy stopped improving.

    Fires (once per stall episode) when ``patience`` consecutive
    ``eval`` events fail to improve the best seen accuracy by at least
    ``min_delta``; re-arms as soon as accuracy improves again.
    """

    name = "plateau"

    def __init__(
        self,
        *,
        patience: int = 5,
        min_delta: float = 1e-3,
        abort: bool = False,
    ):
        super().__init__(abort=abort)
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self._best = -math.inf
        self._stalled = 0
        self._fired = False

    def observe(self, event: RunEvent) -> Alert | None:
        if event.kind != EVAL:
            return None
        accuracy = event.data.get("accuracy")
        if accuracy is None or not math.isfinite(accuracy):
            return None
        if accuracy >= self._best + self.min_delta:
            self._best = float(accuracy)
            self._stalled = 0
            self._fired = False
            return None
        self._best = max(self._best, float(accuracy))
        self._stalled += 1
        if self._stalled >= self.patience and not self._fired:
            self._fired = True
            return self._alert(
                event,
                f"accuracy plateaued at {self._best:.4f} for "
                f"{self._stalled} evaluations",
                best_accuracy=self._best,
                stalled_evals=self._stalled,
            )
        return None


class QuorumStarvationMonitor(HealthMonitor):
    """Edge rounds keep force-closing below quorum.

    The event-driven engine closes a round that can no longer reach its
    quorum (``forced=True`` on the ``edge_round`` event).  An
    occasional forced closure is survivable message loss; ``threshold``
    *consecutive* ones on the same group mean the group is starved and
    the configured quorum is unreachable.  Re-arms on a clean closure.
    """

    name = "quorum_starvation"

    def __init__(self, *, threshold: int = 3, abort: bool = False):
        super().__init__(abort=abort)
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self._streaks: dict[int, int] = {}
        self._fired: set[int] = set()

    def observe(self, event: RunEvent) -> Alert | None:
        if event.kind != EDGE_ROUND:
            return None
        group = int(event.data.get("group", event.data.get("edge", 0)))
        if not event.data.get("forced"):
            self._streaks[group] = 0
            self._fired.discard(group)
            return None
        streak = self._streaks.get(group, 0) + 1
        self._streaks[group] = streak
        if streak >= self.threshold and group not in self._fired:
            self._fired.add(group)
            return self._alert(
                event,
                f"edge {group} force-closed {streak} consecutive rounds "
                "below quorum",
                group=group,
                consecutive_forced=streak,
            )
        return None


class StalenessRunawayMonitor(HealthMonitor):
    """Stale contributions are aging past the useful horizon.

    Watches the staleness values folded at each ``edge_round``.  Fires
    when a fold arrives ``max_staleness`` or more rounds old, or when
    more than ``max_stale_fraction`` of the members folded stale over
    the last ``window`` rounds — a federation whose buffers only ever
    grow older is drifting, not converging.  Re-arms after a
    stale-free round.
    """

    name = "staleness_runaway"

    def __init__(
        self,
        *,
        max_staleness: int = 3,
        max_stale_fraction: float = 0.5,
        window: int = 5,
        abort: bool = False,
    ):
        super().__init__(abort=abort)
        if max_staleness < 1:
            raise ValueError(
                f"max_staleness must be >= 1, got {max_staleness}"
            )
        if not 0.0 < max_stale_fraction <= 1.0:
            raise ValueError(
                f"max_stale_fraction must be in (0, 1], got "
                f"{max_stale_fraction}"
            )
        self.max_staleness = int(max_staleness)
        self.max_stale_fraction = float(max_stale_fraction)
        self.window = int(window)
        self._recent: deque[tuple[int, int]] = deque(maxlen=self.window)
        self._fired = False

    def observe(self, event: RunEvent) -> Alert | None:
        if event.kind != EDGE_ROUND:
            return None
        staleness = [int(s) for s in event.data.get("staleness", ())]
        members = int(event.data.get("members", 0))
        self._recent.append((len(staleness), members))
        if not staleness:
            self._fired = False
            return None
        worst = max(staleness)
        if worst >= self.max_staleness and not self._fired:
            self._fired = True
            return self._alert(
                event,
                f"stale contribution {worst} rounds old folded at edge "
                f"{event.data.get('group', '?')} "
                f"(limit {self.max_staleness})",
                staleness=worst,
            )
        total_members = sum(m for _, m in self._recent)
        total_stale = sum(s for s, _ in self._recent)
        if (
            total_members
            and len(self._recent) == self.window
            and total_stale / total_members > self.max_stale_fraction
            and not self._fired
        ):
            self._fired = True
            return self._alert(
                event,
                f"{total_stale}/{total_members} contributions stale over "
                f"the last {self.window} rounds",
                stale=total_stale,
                members=total_members,
            )
        return None


class FaultBudgetMonitor(HealthMonitor):
    """Cumulative realized fault events exceeded the run's budget.

    ``eval`` events from runs with an attached
    :class:`~repro.faults.FaultInjector` carry the cumulative
    ``fault_events`` count; once it passes ``budget`` the deployment is
    degrading faster than the experiment accounted for.  Fires once.
    """

    name = "fault_budget"

    def __init__(self, *, budget: int = 1000, abort: bool = False):
        super().__init__(abort=abort)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = int(budget)
        self._fired = False

    def observe(self, event: RunEvent) -> Alert | None:
        if event.kind != EVAL or self._fired:
            return None
        realized = event.data.get("fault_events")
        if realized is None or realized <= self.budget:
            return None
        self._fired = True
        return self._alert(
            event,
            f"{int(realized)} realized fault events exceeded the budget "
            f"of {self.budget}",
            fault_events=int(realized),
            budget=self.budget,
        )


def default_monitors(*, abort: bool = False) -> list[HealthMonitor]:
    """The standard battery with default thresholds.

    ``abort`` applies only to the divergence monitor — the one
    condition a run can never recover from; the rest always just alert.
    """
    return [
        DivergenceMonitor(abort=abort),
        PlateauMonitor(),
        QuorumStarvationMonitor(),
        StalenessRunawayMonitor(),
        FaultBudgetMonitor(),
    ]
