"""Named gauges and counters with Prometheus-style text exposition.

The :class:`MetricsRegistry` is the pull-side view of a monitored run:
the hub folds every run event into a small set of named metrics
(latest accuracy, cumulative bytes per tier, round counters, alert
counts), and :meth:`MetricsRegistry.exposition` renders them in the
Prometheus text format — the snapshot a future job server will serve
from a ``/metrics`` endpoint.

Metrics are identified by name plus an optional, sorted label set
(``repro_gamma{edge="0"}``).  Gauges hold the last written value;
counters only accumulate.
"""

from __future__ import annotations

__all__ = ["MetricsRegistry"]


def _metric_key(name: str, labels: dict | None) -> tuple:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def _format_series(key: tuple) -> str:
    name, labels = key
    if not labels:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{body}}}"


class MetricsRegistry:
    """Process-local gauge/counter store for one monitoring session."""

    def __init__(self) -> None:
        self._gauges: dict[tuple, float] = {}
        self._counters: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float, labels: dict | None = None) -> None:
        """Overwrite the gauge with the latest value."""
        self._gauges[_metric_key(name, labels)] = float(value)

    def inc_counter(
        self, name: str, value: float = 1.0, labels: dict | None = None
    ) -> None:
        """Accumulate ``value`` (must be >= 0) onto the counter."""
        if value < 0:
            raise ValueError(f"counters only increase, got {value}")
        key = _metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + float(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def gauge(self, name: str, labels: dict | None = None) -> float | None:
        return self._gauges.get(_metric_key(name, labels))

    def counter(self, name: str, labels: dict | None = None) -> float:
        return self._counters.get(_metric_key(name, labels), 0.0)

    def snapshot(self) -> dict:
        """JSON-able dump: ``{series-string: value}`` per metric type."""
        return {
            "gauges": {
                _format_series(key): value
                for key, value in sorted(self._gauges.items())
            },
            "counters": {
                _format_series(key): value
                for key, value in sorted(self._counters.items())
            },
        }

    def exposition(self) -> str:
        """Prometheus text exposition of every metric.

        Series are grouped per metric name under one ``# TYPE`` header,
        names sorted, gauges before counters — a stable, diffable
        snapshot.
        """
        lines: list[str] = []
        for store, metric_type in (
            (self._gauges, "gauge"),
            (self._counters, "counter"),
        ):
            by_name: dict[str, list[tuple]] = {}
            for key in store:
                by_name.setdefault(key[0], []).append(key)
            for name in sorted(by_name):
                lines.append(f"# TYPE {name} {metric_type}")
                for key in sorted(by_name[name]):
                    value = store[key]
                    rendered = f"{value:g}"
                    lines.append(f"{_format_series(key)} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")
