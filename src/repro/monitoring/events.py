"""Typed records on the live run-event stream.

Every monitored run emits a sequence of :class:`RunEvent` records — the
streaming counterpart of the post-hoc :class:`~repro.telemetry.tracer`
trace.  Six kinds circulate:

* ``run_start`` — one per run: algorithm, config, federation shape,
  planned iterations;
* ``eval`` — one per evaluation point: accuracy, test/train loss and
  the cumulative communication-ledger byte counters at that moment;
* ``edge_round`` — one per edge aggregation: γℓ per edge (adaptive
  algorithms), participants, and — under the event-driven engine — the
  staleness fold counts, quorum wait and forced-closure flag;
* ``cloud_round`` — one per cloud aggregation (stale-upload tally under
  the event-driven engine);
* ``alert`` — one per health-monitor finding (see
  :mod:`repro.monitoring.health`);
* ``checkpoint_saved`` / ``checkpoint_restored`` — one per durable
  snapshot written (path, trigger reason, archive size) and one per
  resume applied (path, iteration resumed from);
* ``run_end`` — one per run: final status (finished / diverged /
  aborted) and totals.

An event is a flat JSON-able envelope: the typed header fields below
plus a free-form ``data`` payload whose keys are stable per kind (the
schema table lives in ``docs/architecture.md`` §13).  ``wall_time`` is
seconds on the monotonic clock since the monitor's epoch; ``sim_time``
is the simulated clock of event-driven runs (``None`` for lockstep
runs, which have no time axis while running).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "RUN_START",
    "EVAL",
    "EDGE_ROUND",
    "CLOUD_ROUND",
    "ALERT",
    "CHECKPOINT_SAVED",
    "CHECKPOINT_RESTORED",
    "RUN_END",
    "EVENT_KINDS",
    "RunEvent",
]

RUN_START = "run_start"
EVAL = "eval"
EDGE_ROUND = "edge_round"
CLOUD_ROUND = "cloud_round"
ALERT = "alert"
CHECKPOINT_SAVED = "checkpoint_saved"
CHECKPOINT_RESTORED = "checkpoint_restored"
RUN_END = "run_end"

EVENT_KINDS = (
    RUN_START,
    EVAL,
    EDGE_ROUND,
    CLOUD_ROUND,
    ALERT,
    CHECKPOINT_SAVED,
    CHECKPOINT_RESTORED,
    RUN_END,
)


@dataclass(slots=True)
class RunEvent:
    """One record on the run-event stream."""

    kind: str
    seq: int = 0
    wall_time: float = 0.0
    iteration: int = 0
    # "" for run-lifecycle events; "edge" / "cloud" for round events.
    tier: str = ""
    # Simulated clock (event-driven runs only).
    sim_time: float | None = None
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "seq": self.seq,
            "wall_time": self.wall_time,
            "iteration": self.iteration,
        }
        if self.tier:
            payload["tier"] = self.tier
        if self.sim_time is not None:
            payload["sim_time"] = self.sim_time
        if self.data:
            payload["data"] = self.data
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunEvent":
        sim_time = payload.get("sim_time")
        return cls(
            kind=str(payload["kind"]),
            seq=int(payload.get("seq", 0)),
            wall_time=float(payload.get("wall_time", 0.0)),
            iteration=int(payload.get("iteration", 0)),
            tier=str(payload.get("tier", "")),
            sim_time=None if sim_time is None else float(sim_time),
            data=dict(payload.get("data", {})),
        )

    def to_json(self) -> str:
        """One-line JSON form (the streaming JSONL wire format)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "RunEvent":
        return cls.from_dict(json.loads(line))
