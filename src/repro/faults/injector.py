"""Deterministic runtime realization of a :class:`FaultPlan`.

One :class:`FaultInjector` is attached per algorithm run.  Every query
is a pure function of the plan seed and the query's coordinates
(iteration index, interval index, or a monotone message-event counter),
derived through :func:`repro.utils.rng.child_seed` — so a replay of the
same plan on the same topology realizes the identical fault sequence,
and two queries for the same iteration agree even across processes.

Fast paths keep the zero-fault overhead negligible:

* an all-zero plan marks the injector inactive — every query returns
  the shared "nothing happened" sentinel without touching an RNG;
* an active plan still returns ``None`` masks when an iteration
  realizes no dropout, so algorithms fall through to their pristine
  (bit-exact) aggregation path whenever nobody is actually absent.

Realized events are double-counted on purpose: into the injector's own
``counts`` dict (always, so the ``repro faults`` summary works without
a tracer) and into the active tracer's ``fault.*`` counters (when
tracing is enabled).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan
from repro.telemetry import get_tracer
from repro.utils.rng import child_seed, make_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "TransferOutcome",
    "NO_TRANSFER_FAULTS",
]


class InjectedCrash(RuntimeError):
    """Raised by :meth:`FaultInjector.maybe_crash` at a scripted kill.

    Simulates an abrupt process death at the top of an iteration (or
    event-engine round): the run driver does not catch it, so training
    stops with whatever checkpoints were already durable on disk — the
    crash-recovery tests then resume and must match the uninterrupted
    golden trajectory.
    """

    def __init__(self, iteration: int):
        super().__init__(f"injected crash at iteration {iteration}")
        self.iteration = iteration


@dataclass(frozen=True)
class TransferOutcome:
    """Realized message faults for one batch of transfers.

    ``retries`` counts every retransmission attempt (each one moves a
    full payload again, so the ledger bills it as an extra transfer
    event); ``duplicates`` counts spurious double-deliveries (same
    billing, no numeric effect); ``failed`` holds the positions (within
    the batch) whose transfer never got through within ``max_retries``
    — the degradation policy treats those senders as absent.
    """

    retries: int = 0
    duplicates: int = 0
    failed: tuple[int, ...] = ()

    @property
    def extra_events(self) -> int:
        """Ledger transfer events beyond the nominal ones."""
        return self.retries + self.duplicates


NO_TRANSFER_FAULTS = TransferOutcome()

# Counter names (also used as tracer counter keys).
COUNTERS = (
    "fault.worker_drop",
    "fault.edge_outage",
    "fault.msg_loss",
    "fault.msg_dup",
    "fault.msg_stale",
    "fault.retry",
    "fault.crash",
    "round.pristine",
    "round.degraded",
    "round.skipped",
)


class FaultInjector:
    """Realizes a :class:`FaultPlan` for one (num_workers, num_edges)."""

    def __init__(
        self, plan: FaultPlan, *, num_workers: int, num_edges: int
    ):
        self.plan = plan
        self.num_workers = check_positive_int(num_workers, "num_workers")
        self.num_edges = check_positive_int(num_edges, "num_edges")
        # Inactive injectors answer every query from the no-op fast
        # path; algorithms then run their pristine code bit-for-bit.
        # Crashes are deliberately not part of ``active``: a crash-only
        # plan keeps every numeric query on the pristine path.
        self.active = not plan.is_zero
        self._crash_at = frozenset(plan.crash_iterations)
        self.reset()

    def reset(self) -> None:
        """Clear realized-event state for a fresh run of the same plan."""
        self.counts: dict[str, int] = {name: 0 for name in COUNTERS}
        self._msg_sequence = 0
        self._stale_buffers: dict[str, deque] = {}
        # Edge masks are queried by both the edge and the (coinciding)
        # cloud update; cache per interval so events count once.
        self._edge_masks: dict[int, np.ndarray | None] = {}

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def _count(self, name: str, value: int) -> None:
        if value:
            self.counts[name] += int(value)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count(name, value)

    def note_round(self, kind: str) -> None:
        """Record one aggregation round outcome (pristine/degraded/skipped)."""
        self._count(f"round.{kind}", 1)

    # ------------------------------------------------------------------
    # Scripted crashes (checkpoint/recovery testing)
    # ------------------------------------------------------------------
    def maybe_crash(self, t: int) -> None:
        """Raise :class:`InjectedCrash` when ``t`` is a scripted kill.

        Checked by both drivers at the top of iteration/round ``t``,
        before any state mutates — so everything already checkpointed
        is exactly the state an uninterrupted run had at that point.
        Fires even on an otherwise-inactive injector (crash-only plans
        must not perturb numerics, see :class:`FaultPlan`).
        """
        if t in self._crash_at:
            self._count("fault.crash", 1)
            raise InjectedCrash(t)

    # ------------------------------------------------------------------
    # Worker dropout (per iteration)
    # ------------------------------------------------------------------
    def worker_mask(self, t: int) -> np.ndarray | None:
        """Availability of every worker at iteration ``t``.

        Returns ``None`` when everyone is up (the common case and the
        bit-exact fast path), else a boolean ``(num_workers,)`` array
        with ``True`` = up.  At least one worker is always kept up — a
        federation with zero reachable workers cannot make progress, so
        the lowest-index victim is resurrected (and not counted).
        """
        if not self.active:
            return None
        plan = self.plan
        mask: np.ndarray | None = None
        if plan.worker_dropout > 0.0:
            rng = make_rng(child_seed(plan.seed, "worker", t))
            mask = rng.random(self.num_workers) >= plan.worker_dropout
        for worker, start, stop in plan.scripted_worker_down:
            if start <= t <= stop and worker < self.num_workers:
                if mask is None:
                    mask = np.ones(self.num_workers, dtype=bool)
                mask[worker] = False
        if mask is None or mask.all():
            return None
        if not mask.any():
            mask[0] = True
        self._count("fault.worker_drop", int((~mask).sum()))
        return mask

    # ------------------------------------------------------------------
    # Edge outage (per edge interval)
    # ------------------------------------------------------------------
    def edge_mask(self, interval: int) -> np.ndarray | None:
        """Availability of every edge node during ``interval``.

        ``None`` = all edges up.  As with workers, at least one edge is
        kept up so the cloud tier always has a participant.
        """
        if not self.active:
            return None
        if interval in self._edge_masks:
            return self._edge_masks[interval]
        plan = self.plan
        mask: np.ndarray | None = None
        if plan.edge_outage > 0.0:
            rng = make_rng(child_seed(plan.seed, "edge", interval))
            mask = rng.random(self.num_edges) >= plan.edge_outage
        for edge, start, stop in plan.scripted_edge_down:
            if start <= interval <= stop and edge < self.num_edges:
                if mask is None:
                    mask = np.ones(self.num_edges, dtype=bool)
                mask[edge] = False
        if mask is not None and not mask.any():
            mask[0] = True
        if mask is not None and mask.all():
            mask = None
        self._edge_masks[interval] = mask
        if mask is not None:
            self._count("fault.edge_outage", int((~mask).sum()))
        return mask

    # ------------------------------------------------------------------
    # Message faults (per transfer batch)
    # ------------------------------------------------------------------
    def transfer_outcome(self, count: int) -> TransferOutcome:
        """Realize loss/duplication for a batch of ``count`` transfers.

        Consecutive calls advance an internal sequence counter, so the
        outcome stream is deterministic for a deterministic call order
        (which every algorithm's aggregation schedule guarantees).
        """
        plan = self.plan
        if not self.active or count <= 0 or not plan.has_message_faults:
            return NO_TRANSFER_FAULTS
        self._msg_sequence += 1
        rng = make_rng(child_seed(plan.seed, "msg", self._msg_sequence))
        retries = 0
        failed: list[int] = []
        if plan.msg_loss > 0.0:
            # Attempt matrix: row a is attempt a's loss draw per transfer.
            lost = rng.random((plan.max_retries + 1, count)) < plan.msg_loss
            delivered = ~lost.all(axis=0)
            # First successful attempt index = number of retries used.
            first_ok = np.argmax(~lost, axis=0)
            retries = int(first_ok[delivered].sum())
            retries += int((~delivered).sum()) * plan.max_retries
            failed = np.flatnonzero(~delivered).tolist()
        duplicates = 0
        if plan.msg_duplication > 0.0:
            dup_draws = rng.random(count) < plan.msg_duplication
            if failed:
                dup_draws[np.asarray(failed, dtype=int)] = False
            duplicates = int(dup_draws.sum())
        self._count("fault.retry", retries)
        self._count("fault.msg_loss", len(failed))
        self._count("fault.msg_dup", duplicates)
        return TransferOutcome(
            retries=retries,
            duplicates=duplicates,
            failed=tuple(int(i) for i in failed),
        )

    # ------------------------------------------------------------------
    # Staleness (per-upload fates for the event-driven engine)
    # ------------------------------------------------------------------
    def stale_flags(self, count: int) -> np.ndarray | None:
        """Which of ``count`` uploads deliver a *stale* payload.

        The event-driven engine keeps per-node message buffers, so a
        stale message is demoted at the receiver (buffered and folded
        into the next round with a decayed weight) rather than
        substituted from a ring buffer as :meth:`stale_substitute` does
        for the lockstep replay.  Fates come from the same monotone
        message stream as :meth:`transfer_outcome`, so a replay of the
        plan realizes the identical sequence.  Returns ``None`` when no
        upload is stale (the common fast path), else a boolean array
        with ``True`` = stale.
        """
        plan = self.plan
        if not self.active or count <= 0 or plan.msg_staleness <= 0.0:
            return None
        self._msg_sequence += 1
        rng = make_rng(child_seed(plan.seed, "msg", self._msg_sequence))
        flags = rng.random(count) < plan.msg_staleness
        if not flags.any():
            return None
        self._count("fault.msg_stale", int(flags.sum()))
        return flags

    # ------------------------------------------------------------------
    # Staleness (edge -> cloud uploads)
    # ------------------------------------------------------------------
    def stale_substitute(
        self, label: str, matrix: np.ndarray
    ) -> np.ndarray:
        """Apply staleness to an edge-state matrix uploaded to the cloud.

        Maintains a ring buffer of the last ``staleness_intervals``
        uploads under ``label``; each row is independently substituted
        with its oldest buffered version with probability
        ``msg_staleness``.  Returns ``matrix`` itself (no copy) when no
        substitution happens.
        """
        plan = self.plan
        if not self.active or plan.msg_staleness <= 0.0:
            return matrix
        buffer = self._stale_buffers.get(label)
        if buffer is None:
            buffer = self._stale_buffers[label] = deque(
                maxlen=plan.staleness_intervals
            )
        self._msg_sequence += 1
        rng = make_rng(
            child_seed(plan.seed, "stale", label, self._msg_sequence)
        )
        stale_rows = np.flatnonzero(
            rng.random(matrix.shape[0]) < plan.msg_staleness
        )
        result = matrix
        if stale_rows.size and buffer:
            result = matrix.copy()
            result[stale_rows] = buffer[0][stale_rows]
            self._count("fault.msg_stale", int(stale_rows.size))
        buffer.append(matrix.copy())
        return result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-able digest: the plan, realized events, round outcomes."""
        rounds = {
            kind: self.counts[f"round.{kind}"]
            for kind in ("pristine", "degraded", "skipped")
        }
        events = {
            name: value
            for name, value in self.counts.items()
            if name.startswith("fault.")
        }
        return {
            "plan": self.plan.to_dict(),
            "events": events,
            "rounds": {
                **rounds,
                "total": sum(rounds.values()),
            },
        }
