"""Seeded fault injection and degradation-aware aggregation.

The paper's Algorithm 1 assumes perfectly synchronous worker–edge–cloud
rounds; real multi-tier networks drop workers, lose messages and dark
whole edge nodes.  This package makes those failures *first-class and
replayable*:

* :class:`FaultPlan` — a declarative, seeded description of the failure
  processes (worker dropout, edge outage, message loss / duplication /
  staleness, scripted outage windows);
* :class:`FaultInjector` — the deterministic runtime realization,
  attached to any algorithm via
  :meth:`repro.core.base.FLAlgorithm.attach_faults`;
* :func:`degrade_round` — the shared aggregation-membership resolver
  applying a degradation policy (``renormalize`` / ``carry_forward`` /
  ``skip_round``) so every algorithm survives absences the same,
  well-defined way.

An all-zero plan is a strict no-op (bit-exact trajectories, ≤2%
overhead — enforced by ``benchmarks/bench_faults.py``); any plan is
replayable from its seed alone.  See ``docs/architecture.md`` §10.
"""

from repro.faults.injector import (
    NO_TRANSFER_FAULTS,
    FaultInjector,
    InjectedCrash,
    TransferOutcome,
)
from repro.faults.plan import DEGRADATION_POLICIES, FaultPlan, check_policy
from repro.faults.rounds import PRISTINE_ROUND, RoundOutcome, degrade_round

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectedCrash",
    "TransferOutcome",
    "NO_TRANSFER_FAULTS",
    "DEGRADATION_POLICIES",
    "check_policy",
    "RoundOutcome",
    "PRISTINE_ROUND",
    "degrade_round",
]
