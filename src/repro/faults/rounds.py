"""Resolve one aggregation round's membership under faults.

:func:`degrade_round` is the one piece of logic every algorithm's
aggregation shares: given the candidates of a round (the workers of an
edge, all workers of a two-tier round, the edges of a cloud round),
their aggregation weights, and the iteration's availability mask, it
applies upload-loss outcomes and the degradation policy and returns a
:class:`RoundOutcome` describing

* which rows to aggregate and at which weights,
* which rows receive the redistribution (absent or download-failed
  participants keep their local state),
* how many ledger transfer events the round actually caused (attempted
  uploads + retransmissions + duplicates + successful downloads).

The ``pristine`` outcome is a shared sentinel meaning "nothing was
degraded — run the original code path"; it guarantees bit-exact
numerics whenever no fault is realized, which is what makes the
zero-fault golden-trajectory acceptance hold by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import check_policy

__all__ = ["RoundOutcome", "PRISTINE_ROUND", "degrade_round"]


@dataclass(frozen=True)
class RoundOutcome:
    """Resolved membership and accounting for one aggregation round."""

    pristine: bool = False
    skip: bool = False
    # Rows (indices into the candidate set) whose state enters the
    # weighted average, with the aligned effective weights.
    agg_rows: np.ndarray | None = None
    agg_weights: np.ndarray | None = None
    # Rows that actually uploaded this round (reachable survivors) —
    # differs from agg_rows under carry_forward, where stale state of
    # absent rows is aggregated without any new message.
    present: np.ndarray | None = None
    # Rows that receive the redistributed result.
    receivers: np.ndarray | None = None
    # Ledger transfer events: uploads (incl. retries/duplicates) plus
    # successful downloads.
    events: int = 0


PRISTINE_ROUND = RoundOutcome(pristine=True)
_SKIPPED_ROUND = RoundOutcome(skip=True)


def degrade_round(
    faults: FaultInjector | None,
    policy: str,
    weights: np.ndarray,
    up: np.ndarray | None,
    *,
    downloads: bool = True,
) -> RoundOutcome:
    """Resolve one round over ``len(weights)`` candidates.

    ``up`` is the iteration's availability mask restricted to the
    candidates (``None`` = everyone up).  Returns :data:`PRISTINE_ROUND`
    when no fault touches the round, a ``skip`` outcome when the policy
    abandons it (or no survivor remains), else the degraded membership.
    """
    if faults is None or not faults.active:
        return PRISTINE_ROUND
    count = len(weights)
    candidates = np.arange(count)
    available = candidates if up is None else candidates[up]

    # Upload loss: reachable survivors must also get a message through.
    outcome = faults.transfer_outcome(available.size)
    if outcome.failed:
        delivered = np.ones(available.size, dtype=bool)
        delivered[list(outcome.failed)] = False
        present = available[delivered]
    else:
        present = available

    upload_events = available.size + outcome.extra_events

    if present.size == count and not outcome.extra_events:
        # Nobody absent, nothing lost or duplicated: bit-exact path.
        faults.note_round("pristine")
        return PRISTINE_ROUND

    check_policy(policy)
    degraded = present.size < count
    if degraded and policy == "skip_round":
        # The coordinator abandons the round before any transfer is
        # billed; workers train on until the next scheduled round.
        faults.note_round("skipped")
        return _SKIPPED_ROUND
    if present.size == 0:
        faults.note_round("skipped")
        return _SKIPPED_ROUND

    if degraded and policy == "renormalize":
        agg_rows = present
        agg_weights = weights[present] / weights[present].sum()
    else:
        # carry_forward (or nothing absent, only retries/duplicates):
        # every candidate's last-known state at its original weight.
        agg_rows = candidates
        agg_weights = weights

    # Redistribution reaches the reachable survivors whose download
    # also gets through.
    receivers = present
    events = upload_events
    if downloads:
        download = faults.transfer_outcome(present.size)
        if download.failed:
            got = np.ones(present.size, dtype=bool)
            got[list(download.failed)] = False
            receivers = present[got]
            degraded = True
        # Lost downloads were still transmitted: bill initial attempts
        # for every present row plus all retransmissions/duplicates.
        events += present.size + download.extra_events

    faults.note_round("degraded" if degraded else "pristine")
    return RoundOutcome(
        pristine=False,
        skip=False,
        agg_rows=agg_rows,
        agg_weights=agg_weights,
        present=present,
        receivers=receivers,
        events=events,
    )
