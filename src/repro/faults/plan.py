"""Declarative fault plans: what can go wrong, how often, from which seed.

A :class:`FaultPlan` is a frozen value object describing the failure
processes injected into a federated run.  It never draws randomness
itself — the :class:`~repro.faults.injector.FaultInjector` realizes the
plan deterministically from ``plan.seed`` via hash-derived child streams
(:func:`repro.utils.rng.child_seed`), so the same plan on the same
topology always produces the same fault events regardless of process or
platform ("seed-replay guarantee").

Three failure families (paper §III-A assumes none of them):

* **worker dropout** — each iteration, each worker is independently
  offline with probability ``worker_dropout``: it skips the local step
  (state frozen, sampler untouched) and misses any aggregation scheduled
  at that iteration;
* **edge outage** — each edge interval, each edge node is dark with
  probability ``edge_outage``: its edge aggregation does not happen and
  it misses a coinciding cloud round;
* **message faults** — each inter-tier transfer is independently lost
  with probability ``msg_loss`` (retried up to ``max_retries`` times;
  still-failing senders are treated as absent for the round), duplicated
  with probability ``msg_duplication`` (pure cost: extra bytes, no
  numeric effect), and each edge→cloud upload is stale with probability
  ``msg_staleness`` (the cloud aggregates the edge's state from
  ``staleness_intervals`` cloud rounds ago).

``scripted_worker_down`` / ``scripted_edge_down`` overlay deterministic
outage windows on top of the probabilistic processes — the degradation-
equivalence tests script exact participant sets through them.

``crash_iterations`` is a fourth, orthogonal kind: the injector raises
:class:`~repro.faults.injector.InjectedCrash` at the *top* of each
listed iteration (lockstep driver) or round (event-driven engine),
before any state mutates — simulating a process kill for the
checkpoint/resume tests.  A crash is a control-flow fault, not a
numeric one, so it deliberately does **not** count toward
:attr:`FaultPlan.is_zero`: a crash-only plan keeps the injector
inactive and the run's numerics bit-exact up to the crash point.  The
fault fires whenever the iteration matches — a resumed run that wants
to get past the crash simply does not re-attach the plan.

The all-zero plan (``FaultPlan()``) is a strict no-op: the injector
takes a fast path that draws no randomness and perturbs no numerics, so
attaching it reproduces fault-free trajectories bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.utils.validation import check_probability

__all__ = ["FaultPlan", "DEGRADATION_POLICIES", "check_policy"]

# Degradation policies selectable per algorithm (see docs/architecture.md
# §10 for the policy matrix):
#
# * "renormalize"   — FedAvg-style: aggregate the survivors with their
#   data weights renormalized to sum to 1;
# * "carry_forward" — aggregate all participants at their original
#   weights, absent ones contributing their last-known state;
# * "skip_round"    — abandon any aggregation with an absentee entirely
#   (workers keep training locally until the next scheduled round).
DEGRADATION_POLICIES = ("renormalize", "carry_forward", "skip_round")


def check_policy(policy: str) -> str:
    """Validate a degradation-policy name and return it."""
    if policy not in DEGRADATION_POLICIES:
        raise ValueError(
            f"policy must be one of {DEGRADATION_POLICIES}, got {policy!r}"
        )
    return policy


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of the faults to inject."""

    seed: int = 0
    worker_dropout: float = 0.0
    edge_outage: float = 0.0
    msg_loss: float = 0.0
    msg_duplication: float = 0.0
    msg_staleness: float = 0.0
    staleness_intervals: int = 1
    max_retries: int = 3
    # Deterministic outage windows: (worker, first_iteration,
    # last_iteration) / (edge, first_interval, last_interval), both ends
    # inclusive, overlaid on the probabilistic processes.
    scripted_worker_down: tuple[tuple[int, int, int], ...] = field(
        default_factory=tuple
    )
    scripted_edge_down: tuple[tuple[int, int, int], ...] = field(
        default_factory=tuple
    )
    # Iterations (lockstep) / rounds (event engine) at whose start the
    # injector raises InjectedCrash.  Excluded from ``is_zero`` on
    # purpose: crashes do not perturb numerics, only control flow.
    crash_iterations: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        check_probability(self.worker_dropout, "worker_dropout")
        check_probability(self.edge_outage, "edge_outage")
        check_probability(self.msg_loss, "msg_loss")
        check_probability(self.msg_duplication, "msg_duplication")
        check_probability(self.msg_staleness, "msg_staleness")
        if self.staleness_intervals < 1:
            raise ValueError(
                f"staleness_intervals must be >= 1, got "
                f"{self.staleness_intervals}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        # Normalize scripts to hashable tuples so plans stay frozen
        # value objects even when built from lists.
        object.__setattr__(
            self,
            "scripted_worker_down",
            tuple(
                (int(i), int(a), int(b))
                for i, a, b in self.scripted_worker_down
            ),
        )
        object.__setattr__(
            self,
            "scripted_edge_down",
            tuple(
                (int(i), int(a), int(b))
                for i, a, b in self.scripted_edge_down
            ),
        )
        object.__setattr__(
            self,
            "crash_iterations",
            tuple(sorted(int(t) for t in self.crash_iterations)),
        )
        for t in self.crash_iterations:
            if t < 1:
                raise ValueError(
                    f"crash_iterations entries must be >= 1, got {t}"
                )
        for what, script in (
            ("scripted_worker_down", self.scripted_worker_down),
            ("scripted_edge_down", self.scripted_edge_down),
        ):
            for index, start, stop in script:
                if index < 0 or start < 0 or stop < start:
                    raise ValueError(
                        f"bad {what} entry ({index}, {start}, {stop}): "
                        "want index >= 0 and 0 <= start <= stop"
                    )

    # ------------------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing at all (strict no-op)."""
        return (
            self.worker_dropout == 0.0
            and self.edge_outage == 0.0
            and self.msg_loss == 0.0
            and self.msg_duplication == 0.0
            and self.msg_staleness == 0.0
            and not self.scripted_worker_down
            and not self.scripted_edge_down
        )

    @property
    def has_message_faults(self) -> bool:
        """True when any per-transfer fault process is live."""
        return self.msg_loss > 0.0 or self.msg_duplication > 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form (scripts become lists of lists)."""
        payload = asdict(self)
        payload["scripted_worker_down"] = [
            list(entry) for entry in self.scripted_worker_down
        ]
        payload["scripted_edge_down"] = [
            list(entry) for entry in self.scripted_edge_down
        ]
        payload["crash_iterations"] = list(self.crash_iterations)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(payload.get("seed", 0)),
            worker_dropout=float(payload.get("worker_dropout", 0.0)),
            edge_outage=float(payload.get("edge_outage", 0.0)),
            msg_loss=float(payload.get("msg_loss", 0.0)),
            msg_duplication=float(payload.get("msg_duplication", 0.0)),
            msg_staleness=float(payload.get("msg_staleness", 0.0)),
            staleness_intervals=int(payload.get("staleness_intervals", 1)),
            max_retries=int(payload.get("max_retries", 3)),
            scripted_worker_down=tuple(
                tuple(entry)
                for entry in payload.get("scripted_worker_down", ())
            ),
            scripted_edge_down=tuple(
                tuple(entry)
                for entry in payload.get("scripted_edge_down", ())
            ),
            crash_iterations=tuple(
                payload.get("crash_iterations", ())
            ),
        )
