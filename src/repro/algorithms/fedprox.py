"""FedProx (extension baseline, Li et al. MLSys'20).

Not one of the paper's comparison points, but the standard
heterogeneity-robust baseline readers will ask about: local steps
minimize ``F_i(x) + (μ/2)‖x − w_global‖²``, i.e. plain SGD plus a
proximal pull toward the last global model, which limits client drift
between aggregations.  μ = 0 reduces exactly to FedAvg (tested).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.twotier import TwoTierAlgorithm
from repro.core.federation import Federation
from repro.telemetry import get_tracer
from repro.utils.validation import check_positive

__all__ = ["FedProx"]


class FedProx(TwoTierAlgorithm):
    """Two-tier FL with a proximal term against client drift."""

    name = "FedProx"

    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + ("global_params",)

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        mu: float = 0.1,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = float(mu)

    def config(self) -> dict:
        return {**super().config(), "mu": self.mu}

    def _setup(self) -> None:
        super()._setup()
        self.global_params = self.fed.initial_params()

    def _step(self, t: int) -> float:
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = self._iteration_rows()
            if rows is not None:
                loss = self._gradient_rows(rows)
                proximal = self.mu * (self.x[rows] - self.global_params)
                self.x[rows] -= self.eta * (grads[rows] + proximal)
            else:
                loss = self._gradient_iteration(self.x)
                proximal = self.mu * (self.x - self.global_params)
                self.x -= self.eta * (grads + proximal)
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    self.global_params = self._round_average(self.x, outcome)
                    self.x[self._round_receivers(outcome)] = (
                        self.global_params
                    )
                    self._record_round(outcome=outcome, t=t)
        return loss

    def _global_params(self) -> np.ndarray:
        return self._average_models()
