"""Quantized hierarchical FL (extension after Liu et al. [8]).

The paper's related work highlights hierarchical FL **with quantization**
as the companion communication-efficiency lever.  This module implements
the standard delta-compression scheme on top of HierFAVG:

* every edge round, each worker uploads ``C(x_i − x_sync)`` — the
  compressed *change* since the last synchronization — and the edge
  reconstructs ``x_sync + Σ wᵢ·C(Δᵢ)``;
* every cloud round, each edge likewise uploads its compressed delta.

With an unbiased compressor (the uniform quantizer) the aggregation
remains unbiased; with top-k the scheme is biased but transmits a small
fraction of the payload.  ``uplink_payload_bytes`` accumulates the exact
wire bytes so the timing experiments can trade accuracy against
simulated wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.hierarchical import HierFAVG
from repro.compression import Compressor, NoCompression
from repro.core.federation import Federation
from repro.faults import degrade_round
from repro.telemetry import get_tracer

__all__ = ["QuantizedHierFAVG"]


class QuantizedHierFAVG(HierFAVG):
    """HierFAVG with compressed uplink deltas."""

    name = "QuantizedHierFAVG"

    CKPT_ARRAYS = HierFAVG.CKPT_ARRAYS + ("worker_sync", "edge_sync")
    CKPT_VALUES = ("uplink_payload_bytes",)
    # The delta-compression reference row follows the client: a
    # returning client resumes its deltas against its own last sync.
    CLIENT_STATE = ("worker_sync",)

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 10,
        pi: int = 2,
        compressor: Compressor | None = None,
    ):
        super().__init__(federation, eta=eta, tau=tau, pi=pi)
        self.compressor = (
            compressor if compressor is not None else NoCompression()
        )
        self.uplink_payload_bytes = 0.0

    def config(self) -> dict:
        return {
            **super().config(),
            "compressor": type(self.compressor).__name__,
        }

    def _setup(self) -> None:
        super()._setup()
        # Reference points the deltas are taken against.
        self.worker_sync = self.x.copy()
        self.edge_sync = self.edge_models.copy()
        self.uplink_payload_bytes = 0.0

    def checkpoint_extra(self) -> dict:
        rng = getattr(self.compressor, "rng", None)
        if rng is None:
            return {}
        return {"compressor_rng": rng.bit_generator.state}

    def restore_extra(self, extra: dict) -> None:
        state = extra.get("compressor_rng")
        if state is not None:
            self.compressor.rng.bit_generator.state = state

    def _edge_aggregate(self, redistribute: bool = True, *, t: int = 0) -> None:
        with get_tracer().span("edge_agg"):
            fed = self.fed
            faults = self.faults
            round_bytes = 0.0
            if faults is None or not faults.active:
                for edge in range(fed.num_edges):
                    rows = fed.edge_slices[edge]
                    indices = fed.topology.edge_worker_indices(edge)
                    weights = fed.worker_w_in_edge[edge]
                    aggregate_delta = np.zeros(fed.dim)
                    for weight, index in zip(weights, indices):
                        delta = self.x[index] - self.worker_sync[index]
                        result = self.compressor.compress(delta)
                        round_bytes += result.payload_bytes
                        aggregate_delta += weight * result.vector
                    # All of an edge's workers share the same sync point.
                    edge_model = (
                        self.worker_sync[indices[0]] + aggregate_delta
                    )
                    self.edge_models[edge] = edge_model
                    if redistribute:
                        self.x[rows] = edge_model
                        self.worker_sync[rows] = edge_model
                transfers = fed.num_workers
                if redistribute:
                    transfers += fed.num_workers
            else:
                edge_up = faults.edge_mask(t // self.tau)
                up_mask = self._up_mask
                transfers = 0
                for edge in range(fed.num_edges):
                    rows = fed.edge_slices[edge]
                    indices = fed.topology.edge_worker_indices(edge)
                    weights = fed.worker_w_in_edge[edge]
                    if edge_up is not None and not edge_up[edge]:
                        faults.note_round("skipped")
                        continue
                    up = None if up_mask is None else up_mask[rows]
                    outcome = degrade_round(
                        faults,
                        self.degradation,
                        weights,
                        up,
                        downloads=redistribute,
                    )
                    if outcome.skip:
                        continue
                    if outcome.pristine:
                        agg = np.arange(rows.start, rows.stop)
                        agg_weights = weights
                        receivers = rows
                        transfers += (rows.stop - rows.start) * (
                            2 if redistribute else 1
                        )
                    else:
                        agg = rows.start + outcome.agg_rows
                        agg_weights = outcome.agg_weights
                        receivers = rows.start + outcome.receivers
                        transfers += outcome.events
                    aggregate_delta = np.zeros(fed.dim)
                    for weight, index in zip(agg_weights, agg):
                        delta = self.x[index] - self.worker_sync[index]
                        result = self.compressor.compress(delta)
                        round_bytes += result.payload_bytes
                        aggregate_delta += weight * result.vector
                    # Sync points diverge under partial redistribution, so
                    # reconstruct against the weighted sync average instead
                    # of a shared reference.
                    base = agg_weights @ self.worker_sync[agg]
                    edge_model = base + aggregate_delta
                    self.edge_models[edge] = edge_model
                    if redistribute:
                        self.x[receivers] = edge_model
                        self.worker_sync[receivers] = edge_model
            self.uplink_payload_bytes += round_bytes
            # The ledger counts logical exchanges at full payload; the
            # actual wire bytes after compression live in
            # ``uplink_payload_bytes`` and the tracer counter below.
            if transfers:
                self.history.comm.record_worker_edge(transfers)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("comm.compressed_uplink_bytes", round_bytes)

    def _cloud_aggregate(self, to_workers: bool = True, *, t: int = 0) -> None:
        with get_tracer().span("cloud_agg"):
            fed = self.fed
            faults = self.faults
            if faults is None or not faults.active:
                round_bytes = 0.0
                aggregate_delta = np.zeros(fed.dim)
                for edge in range(fed.num_edges):
                    delta = self.edge_models[edge] - self.edge_sync[edge]
                    result = self.compressor.compress(delta)
                    round_bytes += result.payload_bytes
                    aggregate_delta += fed.edge_w[edge] * result.vector
                global_model = self.edge_sync[0] + aggregate_delta
                self.edge_models[:] = global_model
                self.edge_sync[:] = global_model
                self.uplink_payload_bytes += round_bytes
                self.history.comm.record_edge_cloud(2 * fed.num_edges)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.count("comm.compressed_uplink_bytes", round_bytes)
                if to_workers:
                    self.x[:] = global_model
                    self.worker_sync[:] = global_model
                    self.history.comm.record_worker_edge(
                        fed.num_workers, rounds=0
                    )
                return
            edge_up = faults.edge_mask(t // self.tau)
            outcome = degrade_round(
                faults, self.degradation, fed.edge_w, edge_up
            )
            if outcome.skip:
                return
            models = faults.stale_substitute("cloud.models", self.edge_models)
            if outcome.pristine:
                agg = np.arange(fed.num_edges)
                agg_weights = fed.edge_w
                receivers = agg
                events = 2 * fed.num_edges
            else:
                agg = outcome.agg_rows
                agg_weights = outcome.agg_weights
                receivers = outcome.receivers
                events = outcome.events
            round_bytes = 0.0
            aggregate_delta = np.zeros(fed.dim)
            for weight, edge in zip(agg_weights, agg):
                delta = models[edge] - self.edge_sync[edge]
                result = self.compressor.compress(delta)
                round_bytes += result.payload_bytes
                aggregate_delta += weight * result.vector
            # As on the edge tier, sync points can diverge under faults —
            # reconstruct against the weighted sync average.
            global_model = agg_weights @ self.edge_sync[agg] + aggregate_delta
            self.edge_models[receivers] = global_model
            self.edge_sync[receivers] = global_model
            self.uplink_payload_bytes += round_bytes
            self.history.comm.record_edge_cloud(events)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("comm.compressed_uplink_bytes", round_bytes)
            if to_workers:
                reached = 0
                up_mask = self._up_mask
                for edge in receivers:
                    rows = fed.edge_slices[edge]
                    if up_mask is None:
                        widx = rows
                        reached += rows.stop - rows.start
                    else:
                        widx = rows.start + np.flatnonzero(up_mask[rows])
                        reached += widx.size
                    self.x[widx] = global_model
                    self.worker_sync[widx] = global_model
                if reached:
                    self.history.comm.record_worker_edge(reached, rounds=0)
