"""Quantized hierarchical FL (extension after Liu et al. [8]).

The paper's related work highlights hierarchical FL **with quantization**
as the companion communication-efficiency lever.  This module implements
the standard delta-compression scheme on top of HierFAVG:

* every edge round, each worker uploads ``C(x_i − x_sync)`` — the
  compressed *change* since the last synchronization — and the edge
  reconstructs ``x_sync + Σ wᵢ·C(Δᵢ)``;
* every cloud round, each edge likewise uploads its compressed delta.

With an unbiased compressor (the uniform quantizer) the aggregation
remains unbiased; with top-k the scheme is biased but transmits a small
fraction of the payload.  ``uplink_payload_bytes`` accumulates the exact
wire bytes so the timing experiments can trade accuracy against
simulated wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.hierarchical import HierFAVG
from repro.compression import Compressor, NoCompression
from repro.core.federation import Federation
from repro.telemetry import get_tracer

__all__ = ["QuantizedHierFAVG"]


class QuantizedHierFAVG(HierFAVG):
    """HierFAVG with compressed uplink deltas."""

    name = "QuantizedHierFAVG"

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 10,
        pi: int = 2,
        compressor: Compressor | None = None,
    ):
        super().__init__(federation, eta=eta, tau=tau, pi=pi)
        self.compressor = (
            compressor if compressor is not None else NoCompression()
        )
        self.uplink_payload_bytes = 0.0

    def config(self) -> dict:
        return {
            **super().config(),
            "compressor": type(self.compressor).__name__,
        }

    def _setup(self) -> None:
        super()._setup()
        # Reference points the deltas are taken against.
        self.worker_sync = self.x.copy()
        self.edge_sync = self.edge_models.copy()
        self.uplink_payload_bytes = 0.0

    def _edge_aggregate(self, redistribute: bool = True) -> None:
        with get_tracer().span("edge_agg"):
            fed = self.fed
            round_bytes = 0.0
            for edge in range(fed.num_edges):
                rows = fed.edge_slices[edge]
                indices = fed.topology.edge_worker_indices(edge)
                weights = fed.worker_w_in_edge[edge]
                aggregate_delta = np.zeros(fed.dim)
                for weight, index in zip(weights, indices):
                    delta = self.x[index] - self.worker_sync[index]
                    result = self.compressor.compress(delta)
                    round_bytes += result.payload_bytes
                    aggregate_delta += weight * result.vector
                # All of an edge's workers share the same sync point.
                edge_model = self.worker_sync[indices[0]] + aggregate_delta
                self.edge_models[edge] = edge_model
                if redistribute:
                    self.x[rows] = edge_model
                    self.worker_sync[rows] = edge_model
            self.uplink_payload_bytes += round_bytes
            # The ledger counts logical exchanges at full payload; the
            # actual wire bytes after compression live in
            # ``uplink_payload_bytes`` and the tracer counter below.
            transfers = fed.num_workers
            if redistribute:
                transfers += fed.num_workers
            self.history.comm.record_worker_edge(transfers)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("comm.compressed_uplink_bytes", round_bytes)

    def _cloud_aggregate(self, to_workers: bool = True) -> None:
        with get_tracer().span("cloud_agg"):
            fed = self.fed
            round_bytes = 0.0
            aggregate_delta = np.zeros(fed.dim)
            for edge in range(fed.num_edges):
                delta = self.edge_models[edge] - self.edge_sync[edge]
                result = self.compressor.compress(delta)
                round_bytes += result.payload_bytes
                aggregate_delta += fed.edge_w[edge] * result.vector
            global_model = self.edge_sync[0] + aggregate_delta
            self.edge_models[:] = global_model
            self.edge_sync[:] = global_model
            self.uplink_payload_bytes += round_bytes
            self.history.comm.record_edge_cloud(2 * fed.num_edges)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("comm.compressed_uplink_bytes", round_bytes)
            if to_workers:
                self.x[:] = global_model
                self.worker_sync[:] = global_model
                self.history.comm.record_worker_edge(
                    fed.num_workers, rounds=0
                )
