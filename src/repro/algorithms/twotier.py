"""Two-tier baseline algorithms (workers directly under the cloud).

These are the paper's categories ③ (two-tier momentum FL) and ④ (FedAvg).
All of them ignore the edge level of the federation: aggregation runs over
*all* workers with global data weights every ``tau`` iterations.  For the
paper's fair comparison, callers set this ``tau`` equal to the three-tier
algorithms' ``τ·π``.

Update rules implemented (one class per published algorithm):

* :class:`FedAvg`       — local SGD + periodic model averaging [4].
* :class:`FedNAG`       — local Nesterov momentum; model *and* momentum
  are averaged and redistributed at each round [21].
* :class:`FedMom`       — server Polyak momentum over the round
  pseudo-gradient [19].
* :class:`SlowMo`       — local SGD + server "slow momentum" with slow
  learning rate α [20].
* :class:`Mime`         — workers apply the *server's* momentum statistic
  in every local step; the server refreshes the statistic with the
  average gradient at the aggregated model (MimeLite-style) [22].
* :class:`FedADC`       — drift control: workers seed their local momentum
  buffer from the server's accumulated momentum each round [24].
* :class:`FastSlowMo`   — combined worker NAG (fast) + server slow
  momentum [23].
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FLAlgorithm
from repro.core.federation import Federation
from repro.faults import RoundOutcome, degrade_round
from repro.monitoring.monitor import get_monitor
from repro.telemetry import get_tracer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)

__all__ = [
    "TwoTierAlgorithm",
    "FedAvg",
    "FedNAG",
    "FedMom",
    "SlowMo",
    "Mime",
    "FedADC",
    "FastSlowMo",
]


class TwoTierAlgorithm(FLAlgorithm):
    """Shared plumbing: stacked (num_workers, dim) models + global averaging."""

    # Checkpoint state: the stacked worker models; subclasses extend
    # with their momentum buffers / server vectors.
    CKPT_ARRAYS = ("x",)

    def __init__(self, federation: Federation, *, eta: float = 0.01, tau: int = 20):
        super().__init__(federation, eta=eta)
        self.tau = check_positive_int(tau, "tau")

    def config(self) -> dict:
        return {"eta": self.eta, "tau": self.tau}

    def _setup(self) -> None:
        self.x = self.fed.initial_worker_matrix()
        self._grads = np.empty_like(self.x)

    def _average_models(self) -> np.ndarray:
        return self.fed.global_average_workers(self.x)

    def _broadcast(self, params: np.ndarray) -> None:
        self.x[:] = params

    def _global_params(self) -> np.ndarray:
        return self._average_models()

    def _record_round(
        self,
        participants: int | None = None,
        *,
        outcome: RoundOutcome | None = None,
        t: int = 0,
    ) -> None:
        """Ledger entry (and monitor event) for one aggregation round.

        Two-tier workers talk to the cloud directly, so a round is one
        upload + one download per participating worker on the
        edge↔cloud (WAN) tier.  A degraded round bills the transfer
        events its :class:`RoundOutcome` realized instead (attempted
        uploads, retransmissions, duplicates, successful downloads).
        This is the one chokepoint every two-tier algorithm's round
        passes through, so the monitor's ``cloud_round`` event is
        emitted here for all of them.
        """
        if outcome is not None and not outcome.pristine:
            self.history.comm.record_edge_cloud(outcome.events)
            transfers = outcome.events
            participants = len(outcome.agg_rows)
        else:
            if participants is None:
                participants = self.fed.num_workers
            transfers = 2 * participants
            self.history.comm.record_edge_cloud(transfers)
        monitor = get_monitor()
        if monitor.enabled:
            monitor.emit(
                "cloud_round",
                iteration=t,
                tier="cloud",
                participants=int(participants),
                transfers=int(transfers),
            )

    # ------------------------------------------------------------------
    # Fault-plan plumbing (all no-ops without an attached plan)
    # ------------------------------------------------------------------
    def _gradient_rows(self, rows: np.ndarray) -> float:
        """Gradient pass over the up workers only; returns their mean loss."""
        return self._gradient_iteration(self.x, rows)

    def _round_outcome(self) -> RoundOutcome:
        """This round's membership over all workers under the fault plan."""
        return degrade_round(
            self.faults,
            self.degradation,
            self.fed.global_worker_w,
            self._up_mask,
        )

    def _round_average(
        self, matrix: np.ndarray, outcome: RoundOutcome
    ) -> np.ndarray:
        """Round aggregate of ``matrix`` under the resolved membership."""
        if outcome.pristine:
            return self.fed.global_average_workers(matrix)
        return self.fed.partial_average(
            matrix, outcome.agg_rows, outcome.agg_weights
        )

    @staticmethod
    def _round_receivers(outcome: RoundOutcome):
        """Rows the round's redistribution writes to."""
        return slice(None) if outcome.pristine else outcome.receivers

    def _local_sgd_iteration(self) -> float:
        """One plain SGD step on every worker; returns mean batch loss."""
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = self._iteration_rows()
            if rows is not None:
                mean_loss = self._gradient_rows(rows)
                self.x[rows] -= self.eta * grads[rows]
                return mean_loss
            mean_loss = self._gradient_iteration(self.x)
            self.x -= self.eta * grads
            return mean_loss


class FedAvg(TwoTierAlgorithm):
    """McMahan et al.: local SGD, average the models every τ iterations."""

    name = "FedAvg"

    def _step(self, t: int) -> float:
        loss = self._local_sgd_iteration()
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    self.x[self._round_receivers(outcome)] = (
                        self._round_average(self.x, outcome)
                    )
                    self._record_round(outcome=outcome, t=t)
        return loss


class FedNAG(TwoTierAlgorithm):
    """Yang et al. TPDS'22: local NAG; aggregate model and momentum.

    This is exactly the two-tier special case HierAdMo's Theorem 1 reduces
    to, so it doubles as an analytical cross-check in the tests.
    """

    name = "FedNAG"
    payload_multiplier = 2.0  # ships model + momentum each round
    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + ("y",)
    # The NAG momentum row follows the client across cohort evictions.
    CLIENT_STATE = ("y",)

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        gamma: float = 0.5,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        self.gamma = check_fraction(gamma, "gamma")

    def config(self) -> dict:
        return {**super().config(), "gamma": self.gamma}

    def _setup(self) -> None:
        super()._setup()
        self.y = self.x.copy()

    def _nag_iteration(self) -> float:
        """One local NAG step per up worker; returns their mean loss."""
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = self._iteration_rows()
            if rows is not None:
                mean_loss = self._gradient_rows(rows)
                y_new = self.x[rows] - self.eta * grads[rows]
                self.x[rows] = y_new + self.gamma * (y_new - self.y[rows])
                self.y[rows] = y_new
                return mean_loss
            mean_loss = self._gradient_iteration(self.x)
            y_new = self.x - self.eta * grads
            self.x = y_new + self.gamma * (y_new - self.y)
            self.y = y_new
            return mean_loss

    def _step(self, t: int) -> float:
        loss = self._nag_iteration()
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    recv = self._round_receivers(outcome)
                    self.x[recv] = self._round_average(self.x, outcome)
                    self.y[recv] = self._round_average(self.y, outcome)
                    self._record_round(outcome=outcome, t=t)
        return loss


class FedMom(TwoTierAlgorithm):
    """Huo et al.: server-side Polyak momentum on the round pseudo-gradient.

    Per round: Δ = w_prev − mean(worker models); m ← β·m + Δ;
    w ← w_prev − m.  β=0 reduces to FedAvg (unit-tested).
    """

    name = "FedMom"
    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + (
        "server_params",
        "server_momentum",
    )

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        beta: float = 0.5,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        self.beta = check_fraction(beta, "beta")

    def config(self) -> dict:
        return {**super().config(), "beta": self.beta}

    def _setup(self) -> None:
        super()._setup()
        self.server_params = self.fed.initial_params()
        self.server_momentum = np.zeros(self.fed.dim)

    def _step(self, t: int) -> float:
        loss = self._local_sgd_iteration()
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    delta = self.server_params - self._round_average(
                        self.x, outcome
                    )
                    self.server_momentum = (
                        self.beta * self.server_momentum + delta
                    )
                    self.server_params = (
                        self.server_params - self.server_momentum
                    )
                    self.x[self._round_receivers(outcome)] = (
                        self.server_params
                    )
                    self._record_round(outcome=outcome, t=t)
        return loss

    def _global_params(self) -> np.ndarray:
        return self.server_params.copy()


class SlowMo(TwoTierAlgorithm):
    """Wang et al. ICLR'20: slow momentum over rounds.

    Per round: d = (w_prev − mean(models)) / η  (pseudo-gradient);
    u ← β·u + d; w ← w_prev − α·η·u.  α=1, β=0 reduces to FedAvg.
    """

    name = "SlowMo"
    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + (
        "server_params",
        "slow_momentum",
    )

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        beta: float = 0.5,
        alpha: float = 1.0,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        self.beta = check_fraction(beta, "beta")
        self.alpha = check_positive(alpha, "alpha")

    def config(self) -> dict:
        return {**super().config(), "beta": self.beta, "alpha": self.alpha}

    def _setup(self) -> None:
        super()._setup()
        self.server_params = self.fed.initial_params()
        self.slow_momentum = np.zeros(self.fed.dim)

    def _step(self, t: int) -> float:
        loss = self._local_sgd_iteration()
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    pseudo_grad = (
                        self.server_params
                        - self._round_average(self.x, outcome)
                    ) / self.eta
                    self.slow_momentum = (
                        self.beta * self.slow_momentum + pseudo_grad
                    )
                    self.server_params = (
                        self.server_params
                        - self.alpha * self.eta * self.slow_momentum
                    )
                    self.x[self._round_receivers(outcome)] = (
                        self.server_params
                    )
                    self._record_round(outcome=outcome, t=t)
        return loss

    def _global_params(self) -> np.ndarray:
        return self.server_params.copy()


class Mime(TwoTierAlgorithm):
    """Karimireddy et al.: mimic centralized SGD-with-momentum.

    The server momentum statistic ``s`` is *frozen during local steps*:
    every worker update is ``x ← x − η((1−β)·g + β·s)``.  At each round
    the server refreshes ``s ← (1−β)·ḡ + β·s`` with the average worker
    gradient evaluated at the aggregated model (MimeLite's approximation).
    """

    name = "Mime"
    # Broadcasts the server statistic alongside the model; the round's
    # extra gradient exchange is folded into the same multiplier.
    payload_multiplier = 2.0
    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + ("server_state",)

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        beta: float = 0.5,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        self.beta = check_fraction(beta, "beta")

    def config(self) -> dict:
        return {**super().config(), "beta": self.beta}

    def _setup(self) -> None:
        super()._setup()
        self.server_state = np.zeros(self.fed.dim)

    def _step(self, t: int) -> float:
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = self._iteration_rows()
            if rows is not None:
                loss = self._gradient_rows(rows)
                self.x[rows] -= self.eta * (
                    (1.0 - self.beta) * grads[rows]
                    + self.beta * self.server_state
                )
            else:
                loss = self._gradient_iteration(self.x)
                self.x -= self.eta * (
                    (1.0 - self.beta) * grads + self.beta * self.server_state
                )
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    x_bar = self._round_average(self.x, outcome)
                    shared = np.broadcast_to(x_bar, grads.shape)
                    if outcome.pristine:
                        self.fed.gradient_all(shared, out=grads)
                        mean_grad = self.fed.global_average_workers(grads)
                    else:
                        # Only the reachable workers can evaluate a fresh
                        # gradient at the aggregate for the refresh.
                        present = outcome.present
                        self.fed.gradient_all(shared, rows=present, out=grads)
                        w = self.fed.global_worker_w[present]
                        mean_grad = self.fed.partial_average(
                            grads, present, w / w.sum()
                        )
                    self.server_state = (
                        (1.0 - self.beta) * mean_grad
                        + self.beta * self.server_state
                    )
                    self.x[self._round_receivers(outcome)] = x_bar
                    self._record_round(outcome=outcome, t=t)
        return loss


class FedADC(TwoTierAlgorithm):
    """Ozfatura et al. ISIT'21: accelerated FL with drift control.

    The server keeps a momentum over round pseudo-gradients; each round it
    broadcasts the momentum and workers *seed their local momentum buffer*
    with it, so local updates start aligned with the global direction
    (the drift-control mechanism).  Locally workers run Polyak-momentum
    SGD on that buffer.
    """

    name = "FedADC"
    # Broadcasts the server momentum alongside the model each round.
    payload_multiplier = 2.0
    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + (
        "server_params",
        "server_momentum",
        "local_momentum",
    )
    # The drift-control buffer is per-client state across cohorts.
    CLIENT_STATE = ("local_momentum",)

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        beta: float = 0.5,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        self.beta = check_fraction(beta, "beta")

    def config(self) -> dict:
        return {**super().config(), "beta": self.beta}

    def _setup(self) -> None:
        super()._setup()
        self.server_params = self.fed.initial_params()
        self.server_momentum = np.zeros(self.fed.dim)
        self.local_momentum = np.zeros((self.fed.num_workers, self.fed.dim))

    def _step(self, t: int) -> float:
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = self._iteration_rows()
            if rows is not None:
                loss = self._gradient_rows(rows)
                self.local_momentum[rows] = (
                    self.beta * self.local_momentum[rows] + grads[rows]
                )
                self.x[rows] -= self.eta * self.local_momentum[rows]
            else:
                loss = self._gradient_iteration(self.x)
                self.local_momentum = self.beta * self.local_momentum + grads
                self.x -= self.eta * self.local_momentum
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    avg = self._round_average(self.x, outcome)
                    pseudo_grad = (
                        self.server_params - avg
                    ) / (self.eta * self.tau)
                    self.server_momentum = (
                        self.beta * self.server_momentum
                        + (1.0 - self.beta) * pseudo_grad
                    )
                    self.server_params = avg
                    recv = self._round_receivers(outcome)
                    self.x[recv] = self.server_params
                    self.local_momentum[recv] = self.server_momentum
                    self._record_round(outcome=outcome, t=t)
        return loss

    def _global_params(self) -> np.ndarray:
        return self._average_models()


class FastSlowMo(TwoTierAlgorithm):
    """Yang et al. TAI'22: combined worker (fast) and server (slow) momenta.

    Workers run NAG locally (as FedNAG); every round the server aggregates
    model and momentum, then applies a SlowMo-style slow-momentum step to
    the aggregated model before redistribution.
    """

    name = "FastSlowMo"
    # Ships the worker model and its NAG momentum every round.
    payload_multiplier = 2.0
    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + (
        "y",
        "server_params",
        "slow_momentum",
    )
    # The fast (worker NAG) momentum row follows the client.
    CLIENT_STATE = ("y",)

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        gamma: float = 0.5,
        beta: float = 0.5,
        alpha: float = 1.0,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        self.gamma = check_fraction(gamma, "gamma")
        self.beta = check_fraction(beta, "beta")
        self.alpha = check_positive(alpha, "alpha")

    def config(self) -> dict:
        return {
            **super().config(),
            "gamma": self.gamma,
            "beta": self.beta,
            "alpha": self.alpha,
        }

    def _setup(self) -> None:
        super()._setup()
        self.y = self.x.copy()
        self.server_params = self.fed.initial_params()
        self.slow_momentum = np.zeros(self.fed.dim)

    def _step(self, t: int) -> float:
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = self._iteration_rows()
            if rows is not None:
                loss = self._gradient_rows(rows)
                y_new = self.x[rows] - self.eta * grads[rows]
                self.x[rows] = y_new + self.gamma * (y_new - self.y[rows])
                self.y[rows] = y_new
            else:
                loss = self._gradient_iteration(self.x)
                y_new = self.x - self.eta * grads
                self.x = y_new + self.gamma * (y_new - self.y)
                self.y = y_new
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                outcome = self._round_outcome()
                if not outcome.skip:
                    x_bar = self._round_average(self.x, outcome)
                    y_bar = self._round_average(self.y, outcome)
                    pseudo_grad = (self.server_params - x_bar) / self.eta
                    self.slow_momentum = (
                        self.beta * self.slow_momentum + pseudo_grad
                    )
                    self.server_params = (
                        self.server_params
                        - self.alpha * self.eta * self.slow_momentum
                    )
                    recv = self._round_receivers(outcome)
                    self.x[recv] = self.server_params
                    self.y[recv] = y_bar
                    self._record_round(outcome=outcome, t=t)
        return loss

    def _global_params(self) -> np.ndarray:
        return self.server_params.copy()
