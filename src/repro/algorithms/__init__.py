"""Baseline FL algorithms: the paper's ten comparison points.

``ALGORITHM_REGISTRY`` maps canonical names to constructors so the
experiment runners and benches can build any algorithm from a config
string.  HierAdMo / HierAdMo-R live in :mod:`repro.core` but are included
in the registry for convenience.
"""

from repro.algorithms.asynchronous import (
    AsyncExecutionMixin,
    AsyncFedAvg,
    AsyncHierAdMo,
)
from repro.algorithms.compressed import QuantizedHierFAVG
from repro.algorithms.fedprox import FedProx
from repro.algorithms.hierarchical import CFL, HierFAVG
from repro.algorithms.participation import SampledFedAvg
from repro.algorithms.twotier import (
    FastSlowMo,
    FedADC,
    FedAvg,
    FedMom,
    FedNAG,
    Mime,
    SlowMo,
    TwoTierAlgorithm,
)
from repro.core.hieradmo import HierAdMo, HierAdMoR

ALGORITHM_REGISTRY = {
    "HierAdMo": HierAdMo,
    "HierAdMo-R": HierAdMoR,
    "HierFAVG": HierFAVG,
    "CFL": CFL,
    "FastSlowMo": FastSlowMo,
    "FedADC": FedADC,
    "FedMom": FedMom,
    "SlowMo": SlowMo,
    "FedNAG": FedNAG,
    "Mime": Mime,
    "FedAvg": FedAvg,
}

# Event-driven variants live in their own registry: they take a
# deployment (devices, links, quorum) on top of the usual federation,
# so the lockstep experiment runners cannot construct them blindly.
ASYNC_ALGORITHM_REGISTRY = {
    "AsyncHierAdMo": AsyncHierAdMo,
    "AsyncFedAvg": AsyncFedAvg,
}

THREE_TIER_ALGORITHMS = ("HierAdMo", "HierAdMo-R", "HierFAVG", "CFL")
TWO_TIER_ALGORITHMS = (
    "FastSlowMo",
    "FedADC",
    "FedMom",
    "SlowMo",
    "FedNAG",
    "Mime",
    "FedAvg",
)

__all__ = [
    "ALGORITHM_REGISTRY",
    "ASYNC_ALGORITHM_REGISTRY",
    "THREE_TIER_ALGORITHMS",
    "TWO_TIER_ALGORITHMS",
    "TwoTierAlgorithm",
    "FedAvg",
    "FedNAG",
    "FedMom",
    "SlowMo",
    "Mime",
    "FedADC",
    "FastSlowMo",
    "HierFAVG",
    "CFL",
    "HierAdMo",
    "HierAdMoR",
    "QuantizedHierFAVG",
    "SampledFedAvg",
    "FedProx",
    "AsyncExecutionMixin",
    "AsyncHierAdMo",
    "AsyncFedAvg",
]
