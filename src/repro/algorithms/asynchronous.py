"""Staleness-aware asynchronous algorithm variants.

These run under the event-driven engine
(:class:`repro.simulation.engine.EventLoopRunner`) instead of the
lockstep driver: each worker's gradient steps fire at its simulated
completion time, and aggregation closes on whatever model versions have
arrived when the edge quorum is met.  Two variants ship:

* :class:`AsyncFedAvg` — workers under the cloud directly; round
  closure averages the fresh arrivals plus any buffered stale uploads
  with weights decayed by ``staleness_decay ** s``,
* :class:`AsyncHierAdMo` — the three-tier algorithm with *stale-momentum
  correction*: a buffered stale momentum contribution is contracted
  toward the edge's last distributed aggregate
  (``y_ref + decay**s · (y_snap − y_ref)``) before entering line 11, so
  an ancient velocity cannot re-accelerate the edge momentum, and the
  adaptive γℓ (eqs. 6–7) is measured over the fresh arrivals only.

With ``quorum=1.0`` and no faults, every closure takes the pristine
branch — the exact lockstep expressions over all members — so the
event-driven run reproduces the golden trajectories (pinned at rtol
1e-8 by the equivalence battery).  Histories gain a simulated-time axis
(``eval_times``), which makes the paper's Fig. 2 h/l time-to-accuracy
comparison emergent rather than re-priced after the fact.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.federation import Federation
from repro.core.hieradmo import HierAdMo
from repro.algorithms.twotier import FedAvg
from repro.metrics.history import TrainingHistory
from repro.monitoring.health import MonitorAbort
from repro.monitoring.monitor import get_monitor
from repro.simulation.devices import worker_device_pool
from repro.simulation.engine import AsyncDeployment, EventLoopRunner
from repro.telemetry import get_tracer
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["AsyncExecutionMixin", "AsyncFedAvg", "AsyncHierAdMo"]


class AsyncExecutionMixin:
    """Event-driven execution for an existing lockstep algorithm.

    Mix in *before* the algorithm class.  Replaces ``run`` with the
    event-loop driver and implements the runner's client protocol; the
    numeric hooks (``_async_worker_step``, ``close_round``,
    ``cloud_sync``) come from the concrete subclass.
    """

    # Two-tier subclasses set True: one all-worker group uploading over
    # the WAN, with no separate cloud barrier.
    FLAT = False
    # True for subclasses that record a γℓ trace per round.
    _records_gammas = False

    def __init__(
        self,
        federation: Federation,
        *,
        deployment: AsyncDeployment | None = None,
        staleness_decay: float = 0.5,
        sim_rng=0,
        **kwargs,
    ):
        super().__init__(federation, **kwargs)
        if deployment is None:
            deployment = AsyncDeployment(
                worker_device_pool(federation.num_workers),
                payload_bytes=federation.dim * 8.0 * self.payload_multiplier,
            )
        self.deployment = deployment
        if not 0.0 < staleness_decay <= 1.0:
            raise ValueError(
                f"staleness_decay must be in (0, 1], got {staleness_decay}"
            )
        self.staleness_decay = float(staleness_decay)
        self.sim_rng = sim_rng
        self.simulation = None
        self.runner: EventLoopRunner | None = None

    def config(self) -> dict:
        return {
            **super().config(),
            "quorum": self.deployment.quorum,
            "staleness_decay": self.staleness_decay,
        }

    # ------------------------------------------------------------------
    # Runner client protocol (scheduling side)
    # ------------------------------------------------------------------
    @property
    def group_members(self) -> list[np.ndarray]:
        fed = self.fed
        if self.FLAT:
            return [np.arange(fed.num_workers)]
        return [
            np.arange(rows.start, rows.stop) for rows in fed.edge_slices
        ]

    def local_step(self, worker: int, t: int) -> float:
        """One gradient step of ``worker`` at nominal iteration ``t``."""
        if self.eta_schedule is not None:
            self.eta = check_positive(
                self.eta_schedule(t - 1), "scheduled eta"
            )
        with get_tracer().span("worker_step"):
            loss = float(self._async_worker_step(int(worker)))
        if np.isfinite(loss):
            self._loss_sum += loss
            self._loss_count += 1
        return loss

    def round_complete(self, round_index: int, time: float) -> None:
        """Barrier notification: every group finished ``round_index``."""
        if self._records_gammas:
            self.history.record_gammas(
                self._gamma_pending.pop(round_index, {})
            )
        t = min(round_index * self.tau, self._total_iterations)
        if t % self._eval_every == 0 or t == self._total_iterations:
            accuracy, loss = self.fed.evaluate(self._global_eval_params())
            train = (
                self._loss_sum / self._loss_count
                if self._loss_count
                else float("nan")
            )
            self.history.record_eval(t, accuracy, loss, train_loss=train)
            self.history.eval_times.append(float(time))
            self._loss_sum = 0.0
            self._loss_count = 0
            self._emit_eval(t, accuracy, loss, train, sim_time=float(time))
        # Round barriers are the async analogue of the lockstep rebind
        # point: every group has aggregated and redistributed, so slot
        # adoption sees broadcast-coherent rows.  Runs before the
        # engine's checkpoint hook for the same snapshot-after-rebind
        # guarantee the lockstep driver gives.
        population = self.population
        if (
            population is not None
            and t % population.resample_every == 0
            and t < self._total_iterations
        ):
            population.resample(
                self, t // population.resample_every, iteration=t
            )

    def monitor_round_data(self, group: int, round_index: int) -> dict:
        """Algorithm payload for the engine's ``edge_round`` events."""
        if not self._records_gammas:
            return {}
        gamma = self._gamma_pending.get(round_index, {}).get(group)
        if gamma is None:
            return {}
        return {"gammas": {str(group): float(gamma)}}

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def _async_setup(self) -> None:
        # Last model each worker *received* — the evaluation view.  The
        # live ``x`` rows of mid-interval workers are private state no
        # deployment could actually read.
        self._eval_x = self.x.copy()
        self._stale_store: dict[int, tuple] = {}
        self._gamma_pending: dict[int, dict[int, float]] = {}
        self._loss_sum = 0.0
        self._loss_count = 0

    def _global_eval_params(self) -> np.ndarray:
        return self.fed.global_average_workers(self._eval_x)

    # ------------------------------------------------------------------
    # Checkpoint protocol (engine-side state rides along with the
    # algorithm's declared CKPT_ARRAYS/CKPT_VALUES)
    # ------------------------------------------------------------------
    def checkpoint_arrays(self) -> dict[str, np.ndarray]:
        arrays = dict(super().checkpoint_arrays())
        arrays["async:eval_x"] = self._eval_x
        for worker, snap in self._stale_store.items():
            parts = snap if isinstance(snap, tuple) else (snap,)
            for slot, part in enumerate(parts):
                arrays[f"async:stale:{worker}:{slot}"] = part
        return arrays

    def restore_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        super().restore_arrays(
            {
                name: array
                for name, array in arrays.items()
                if not name.startswith("async:")
            }
        )
        np.copyto(self._eval_x, arrays["async:eval_x"])
        slots: dict[int, dict[int, np.ndarray]] = {}
        for name, array in arrays.items():
            if not name.startswith("async:stale:"):
                continue
            _, _, worker, slot = name.split(":")
            slots.setdefault(int(worker), {})[int(slot)] = array.copy()
        # Single-slot snapshots are bare arrays (AsyncFedAvg), multi-slot
        # ones tuples (AsyncHierAdMo) — mirroring ``snapshot_stale``.
        self._stale_store = {
            worker: (
                parts[0]
                if len(parts) == 1
                else tuple(parts[i] for i in range(len(parts)))
            )
            for worker, parts in slots.items()
        }

    def checkpoint_values(self) -> dict:
        values = dict(super().checkpoint_values())
        values["async:gamma_pending"] = {
            str(r): {str(g): float(v) for g, v in groups.items()}
            for r, groups in self._gamma_pending.items()
        }
        values["async:loss_sum"] = self._loss_sum
        values["async:loss_count"] = self._loss_count
        return values

    def restore_values(self, values: dict) -> None:
        values = dict(values)
        pending = values.pop("async:gamma_pending")
        self._loss_sum = float(values.pop("async:loss_sum"))
        self._loss_count = int(values.pop("async:loss_count"))
        super().restore_values(values)
        self._gamma_pending = {
            int(r): {int(g): float(v) for g, v in groups.items()}
            for r, groups in pending.items()
        }

    def run(
        self,
        total_iterations: int,
        *,
        eval_every: int | None = None,
        history: TrainingHistory | None = None,
        stop_on_divergence: bool = True,
        checkpoints=None,
        resume_from=None,
    ) -> TrainingHistory:
        """Train for ``total_iterations`` under the event-driven engine.

        Evaluations only happen at round-complete barriers (the only
        points with a coherent global model), so ``eval_every`` is
        rounded up to a multiple of ``tau``.  The same applies to
        ``checkpoints``: snapshots land at the first barrier whose
        nominal iteration the manager's schedule selects.  Resuming from
        a snapshot (``resume_from``) restores the full engine state —
        event queue, in-flight uploads, simulation RNG — and replays the
        remaining events bit-exact with an uninterrupted run.
        """
        total_iterations = check_positive_int(
            total_iterations, "total_iterations"
        )
        if eval_every is None:
            eval_every = max(1, total_iterations // 10)
        eval_every = check_positive_int(eval_every, "eval_every")
        eval_every = int(math.ceil(eval_every / self.tau)) * self.tau

        if resume_from is not None:
            if resume_from.driver_kind != "event":
                raise ValueError(
                    f"checkpoint was written by the "
                    f"{resume_from.driver_kind!r} driver, not the event "
                    f"driver"
                )
            history = resume_from.build_history()
        if history is None:
            history = self.fed.new_history(self.name, self.config())
        self.history = history
        history.comm.configure(
            dim=self.fed.dim, payload_multiplier=self.payload_multiplier
        )
        faults = self.faults
        if faults is not None:
            faults.reset()
        self._up_mask = None

        self._setup()
        self._async_setup()
        self._eval_every = eval_every
        self._total_iterations = total_iterations
        if self.population is not None:
            self.population.reset(self)
        if resume_from is not None:
            resume_from.apply(self)
        self._emit_run_start(total_iterations, eval_every)
        alerts_seen = self._alert_mark

        if resume_from is None:
            accuracy, loss = self.fed.evaluate(self._global_eval_params())
            history.record_eval(0, accuracy, loss, train_loss=float("nan"))
            history.eval_times.append(0.0)

        runner = EventLoopRunner(
            self,
            self.deployment,
            tau=self.tau,
            pi=getattr(self, "pi", 1),
            total_iterations=total_iterations,
            faults=faults,
            rng=self.sim_rng,
            flat=self.FLAT,
            stop_on_divergence=stop_on_divergence,
        )
        self.runner = runner
        if resume_from is not None:
            runner.load_state_dict(resume_from.driver_state)
        if checkpoints is not None:

            def checkpoint_hook(active_runner) -> None:
                nonlocal alerts_seen
                monitor = get_monitor()
                alerts_now = len(monitor.alerts) if monitor.enabled else 0
                t = min(
                    active_runner._notified * self.tau, total_iterations
                )
                periodic = checkpoints.should_save(t)
                if not periodic and alerts_now <= alerts_seen:
                    return
                checkpoints.save(
                    self,
                    iteration=t,
                    driver={
                        "kind": "event",
                        "state": active_runner.state_dict(),
                    },
                    total_iterations=total_iterations,
                    eval_every=eval_every,
                    reason="periodic" if periodic else "alert",
                )
                alerts_seen = alerts_now

            runner.checkpoint_hook = checkpoint_hook
        try:
            if resume_from is None:
                self._emit_eval(0, accuracy, loss, float("nan"), sim_time=0.0)
            else:
                self._emit_checkpoint_restored(resume_from)
            self.simulation = runner.run(resume=resume_from is not None)
            if stop_on_divergence and runner.diverged_at is not None:
                history.diverged = True
                history.diverged_at = runner.diverged_at
                accuracy, loss = self.fed.evaluate(self._global_eval_params())
                history.record_eval(
                    runner.diverged_at,
                    accuracy,
                    loss,
                    train_loss=runner.diverged_loss,
                )
                history.eval_times.append(runner.last_event_time)
                self._emit_eval(
                    runner.diverged_at,
                    accuracy,
                    loss,
                    runner.diverged_loss,
                    sim_time=runner.last_event_time,
                )
        except MonitorAbort as abort:
            # The runner's finally-clause built ``result`` from the
            # rounds completed before the abort.
            self.simulation = runner.result
            history.aborted_by = abort.alert.monitor
            iteration = abort.alert.iteration
            if not history.iterations or history.iterations[-1] != iteration:
                accuracy, loss = self.fed.evaluate(self._global_eval_params())
                history.record_eval(
                    iteration, accuracy, loss, train_loss=float("nan")
                )
                history.eval_times.append(runner.last_event_time)
        return self._finish_run(history)

    # ------------------------------------------------------------------
    # Run digests
    # ------------------------------------------------------------------
    def _stale_upload_tally(self) -> dict:
        """Summary of the stale uploads recorded at the cloud rounds."""
        cloud = self.simulation.cloud_rounds if self.simulation else []
        workers = sorted(
            {int(w) for record in cloud for w in record.stale_uploads}
        )
        return {
            "uploads": sum(len(r.stale_uploads) for r in cloud),
            "cloud_rounds": len(cloud),
            "rounds_with_stale": sum(
                1 for r in cloud if r.stale_uploads
            ),
            "workers": workers,
        }

    def _finish_run(self, history: TrainingHistory) -> TrainingHistory:
        tally = self._stale_upload_tally()
        tracer = get_tracer()
        if tracer.enabled and tally["uploads"]:
            # Counted before the base class freezes trace_summary.
            tracer.count("eventsim.stale_uploads", tally["uploads"])
        history = super()._finish_run(history)
        if history.fault_summary is not None:
            history.fault_summary["stale_uploads"] = tally
        return history


class AsyncHierAdMo(AsyncExecutionMixin, HierAdMo):
    """Event-driven HierAdMo with stale-momentum correction."""

    name = "AsyncHierAdMo"
    _records_gammas = True

    # ------------------------------------------------------------------
    # Per-event numerics
    # ------------------------------------------------------------------
    def _async_worker_step(self, worker: int) -> float:
        """Lines 4–6 for one worker (row-wise lockstep expressions)."""
        g = self._grads[worker]
        _, loss = self.fed.gradient(worker, self.x[worker], out=g)
        y_prev = self.y[worker]
        y_new = self.x[worker] - self.eta * g
        velocity = y_new - y_prev
        self.controller.accumulate(worker, g, y_prev, velocity)
        if self.track_mu:
            self.velocity_norms.append(
                float(np.linalg.norm(self.gamma * velocity))
            )
            self.gradient_step_norms.append(
                float(np.linalg.norm(self.eta * g))
            )
        self.x[worker] = y_new + self.gamma * velocity
        self.y[worker] = y_new
        return float(loss)

    def snapshot_stale(self, worker: int) -> None:
        self._stale_store[worker] = (
            self.x[worker].copy(),
            self.y[worker].copy(),
        )

    def resync_worker(self, worker: int, group: int) -> None:
        """A late worker downloads the edge's current state and restarts."""
        self.y[worker] = self.edge_y_minus[group]
        self.x[worker] = self.edge_x_plus[group]
        self._eval_x[worker] = self.edge_x_plus[group]
        self.controller.reset_workers([worker])
        self.history.comm.record_worker_edge(1, rounds=0)

    def close_round(
        self,
        group: int,
        round_index: int,
        fresh: tuple[int, ...],
        stale: tuple[tuple[int, int], ...],
        receivers: tuple[int, ...],
        upload_events: int,
        *,
        dark: bool = False,
    ) -> None:
        """Lines 8–15 on whatever arrived at this edge's quorum."""
        fed = self.fed
        recv = np.asarray(receivers, dtype=int)
        with get_tracer().span("edge_agg"):
            if dark or (not fresh and not stale):
                # No aggregate this round: rebroadcast the edge's last
                # state so the barrier's workers restart coherently.
                if recv.size:
                    self.y[recv] = self.edge_y_minus[group]
                    self.x[recv] = self.edge_x_plus[group]
                    self._eval_x[recv] = self.edge_x_plus[group]
                    self.controller.reset_workers(recv)
                events = upload_events + recv.size
                if events:
                    self.history.comm.record_worker_edge(events, rounds=0)
                return
            rows = fed.edge_slices[group]
            full_weights = fed.worker_w_in_edge[group]
            x_plus_prev = self.edge_x_plus[group]
            if len(fresh) == rows.stop - rows.start and not stale:
                # Full barrier: the exact lockstep pristine expressions.
                gamma_edge = self._adapt_edge_gamma(
                    group, rows, full_weights
                )
                self.controller.reset_workers(rows)
                y_minus = full_weights @ self.y[rows]
                y_plus = x_plus_prev - full_weights @ (
                    x_plus_prev - self.x[rows]
                )
            else:
                fresh_ids = np.asarray(fresh, dtype=int)
                decay = self.staleness_decay
                y_ref = self.edge_y_minus[group]
                blocks_y, blocks_x, blocks_w = [], [], []
                if fresh_ids.size:
                    blocks_y.append(self.y[fresh_ids])
                    blocks_x.append(self.x[fresh_ids])
                    blocks_w.append(full_weights[fresh_ids - rows.start])
                for w_id, s in stale:
                    x_snap, y_snap = self._stale_store.pop(w_id)
                    # Stale-momentum correction: contract the buffered
                    # momentum toward the last distributed aggregate so
                    # an s-rounds-old velocity cannot re-accelerate the
                    # edge momentum at full strength.
                    blocks_y.append(
                        (y_ref + decay**s * (y_snap - y_ref))[None, :]
                    )
                    blocks_x.append(x_snap[None, :])
                    blocks_w.append(
                        np.array(
                            [full_weights[w_id - rows.start] * decay**s]
                        )
                    )
                y_rows = np.vstack(blocks_y)
                x_rows = np.vstack(blocks_x)
                weights = np.concatenate(blocks_w)
                weights = weights / weights.sum()
                if fresh_ids.size:
                    # γℓ measures *current* agreement, so only fresh
                    # accumulators enter eq. 6.
                    w_fresh = full_weights[fresh_ids - rows.start]
                    gamma_edge = self._adapt_edge_gamma(
                        group, fresh_ids, w_fresh / w_fresh.sum()
                    )
                    self.controller.reset_workers(fresh_ids)
                else:
                    gamma_edge = self._gamma_state[group]
                y_minus = weights @ y_rows
                y_plus = x_plus_prev - weights @ (x_plus_prev - x_rows)
            x_plus = y_plus + gamma_edge * (
                y_plus - self.edge_y_plus[group]
            )
            self.edge_y_plus[group] = y_plus
            self.edge_x_plus[group] = x_plus
            self.edge_y_minus[group] = y_minus
            if recv.size:
                self.y[recv] = y_minus
                self.x[recv] = x_plus
                self._eval_x[recv] = x_plus
            self._gamma_pending.setdefault(round_index, {})[group] = (
                gamma_edge
            )
            self.history.comm.record_worker_edge(upload_events + recv.size)

    def cloud_sync(self, index: int, receivers: tuple[int, ...]) -> None:
        """Lines 17–23 at the cloud barrier."""
        with get_tracer().span("cloud_agg"):
            fed = self.fed
            y_bar = fed.cloud_average_edges(self.edge_y_minus)
            x_bar = fed.cloud_average_edges(self.edge_x_plus)
            self.edge_y_minus[:] = y_bar
            self.edge_x_plus[:] = x_bar
            recv = np.asarray(receivers, dtype=int)
            if recv.size == fed.num_workers:
                self.y[:] = y_bar
                self.x[:] = x_bar
                self._eval_x[:] = x_bar
            else:
                self.y[recv] = y_bar
                self.x[recv] = x_bar
                self._eval_x[recv] = x_bar
            self.history.comm.record_edge_cloud(2 * fed.num_edges)
            if recv.size:
                self.history.comm.record_worker_edge(recv.size, rounds=0)


class AsyncFedAvg(AsyncExecutionMixin, FedAvg):
    """Event-driven FedAvg: staleness-decayed averaging at the cloud."""

    name = "AsyncFedAvg"
    FLAT = True

    CKPT_ARRAYS = FedAvg.CKPT_ARRAYS + ("_server_x",)

    def _setup(self) -> None:
        super()._setup()
        # The server's last distributed model (rebroadcast target when a
        # round closes empty, download source for late-worker resyncs).
        self._server_x = self.fed.initial_params()

    # ------------------------------------------------------------------
    # Per-event numerics
    # ------------------------------------------------------------------
    def _async_worker_step(self, worker: int) -> float:
        g = self._grads[worker]
        _, loss = self.fed.gradient(worker, self.x[worker], out=g)
        self.x[worker] -= self.eta * g
        return float(loss)

    def snapshot_stale(self, worker: int) -> None:
        self._stale_store[worker] = self.x[worker].copy()

    def resync_worker(self, worker: int, group: int) -> None:
        self.x[worker] = self._server_x
        self._eval_x[worker] = self._server_x
        self.history.comm.record_edge_cloud(1, rounds=0)

    def close_round(
        self,
        group: int,
        round_index: int,
        fresh: tuple[int, ...],
        stale: tuple[tuple[int, int], ...],
        receivers: tuple[int, ...],
        upload_events: int,
        *,
        dark: bool = False,
    ) -> None:
        fed = self.fed
        recv = np.asarray(receivers, dtype=int)
        with get_tracer().span("cloud_agg"):
            if dark or (not fresh and not stale):
                if recv.size:
                    self.x[recv] = self._server_x
                    self._eval_x[recv] = self._server_x
                events = upload_events + recv.size
                if events:
                    self.history.comm.record_edge_cloud(events, rounds=0)
                return
            if len(fresh) == fed.num_workers and not stale:
                x_bar = fed.global_average_workers(self.x)
            else:
                fresh_ids = np.asarray(fresh, dtype=int)
                decay = self.staleness_decay
                blocks_x, blocks_w = [], []
                if fresh_ids.size:
                    blocks_x.append(self.x[fresh_ids])
                    blocks_w.append(fed.global_worker_w[fresh_ids])
                for w_id, s in stale:
                    blocks_x.append(self._stale_store.pop(w_id)[None, :])
                    blocks_w.append(
                        np.array([fed.global_worker_w[w_id] * decay**s])
                    )
                x_rows = np.vstack(blocks_x)
                weights = np.concatenate(blocks_w)
                x_bar = (weights / weights.sum()) @ x_rows
            self._server_x = x_bar
            if recv.size:
                self.x[recv] = x_bar
                self._eval_x[recv] = x_bar
            self.history.comm.record_edge_cloud(upload_events + recv.size)

    def cloud_sync(self, index: int, receivers: tuple[int, ...]) -> None:
        raise RuntimeError(
            "flat deployments aggregate at round closure; there is no "
            "separate cloud barrier"
        )
