"""Three-tier baseline algorithms without momentum (paper category ②).

* :class:`HierFAVG` — Liu et al. ICC'20 client–edge–cloud FedAvg: plain
  local SGD, edge model averaging every ``τ`` iterations, cloud averaging
  of edge models every ``τ·π`` iterations, full redistribution each time.

* :class:`CFL` — Wang et al. INFOCOM'21 resource-efficient hierarchical
  aggregation.  We implement its communication-saving core: the cloud
  round updates the *edge* models but does not broadcast all the way down
  to workers; workers pick up the cloud value at their next edge round.
  This halves cloud-to-worker broadcasts while staying within a τ-window
  of HierFAVG's trajectory, matching the near-identical accuracies the
  paper reports for the two baselines (Table II).  See DESIGN.md §3 for
  this substitution note.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FLAlgorithm
from repro.core.federation import Federation
from repro.telemetry import get_tracer
from repro.utils.validation import check_positive_int

__all__ = ["HierFAVG", "CFL"]


class HierFAVG(FLAlgorithm):
    """Hierarchical FedAvg (client–edge–cloud)."""

    name = "HierFAVG"

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 10,
        pi: int = 2,
    ):
        super().__init__(federation, eta=eta)
        self.tau = check_positive_int(tau, "tau")
        self.pi = check_positive_int(pi, "pi")

    def config(self) -> dict:
        return {"eta": self.eta, "tau": self.tau, "pi": self.pi}

    def _setup(self) -> None:
        self.x = self.fed.initial_worker_matrix()
        self.edge_models = self.fed.initial_edge_matrix()
        self._grads = np.empty_like(self.x)

    def _local_iteration(self) -> float:
        with get_tracer().span("worker_step"):
            grads = self._grads
            total = 0.0
            for worker in range(self.fed.num_workers):
                _, loss = self.fed.gradient(
                    worker, self.x[worker], out=grads[worker]
                )
                total += loss
            self.x -= self.eta * grads
            return total / self.fed.num_workers

    def _edge_aggregate(self, redistribute: bool = True) -> None:
        with get_tracer().span("edge_agg"):
            fed = self.fed
            self.edge_models[:] = fed.edge_average_all(self.x)
            transfers = fed.num_workers  # uploads
            if redistribute:
                for edge in range(fed.num_edges):
                    self.x[fed.edge_slices[edge]] = self.edge_models[edge]
                transfers += fed.num_workers  # downloads
            self.history.comm.record_worker_edge(transfers)

    def _cloud_aggregate(self, to_workers: bool = True) -> None:
        with get_tracer().span("cloud_agg"):
            fed = self.fed
            global_model = fed.cloud_average_edges(self.edge_models)
            self.edge_models[:] = global_model
            self.history.comm.record_edge_cloud(2 * fed.num_edges)
            if to_workers:
                self.x[:] = global_model
                # Post-cloud broadcast down to workers (LAN traffic; CFL
                # skips exactly this).
                self.history.comm.record_worker_edge(
                    fed.num_workers, rounds=0
                )

    def _step(self, t: int) -> float:
        loss = self._local_iteration()
        if t % self.tau == 0:
            self._edge_aggregate()
        if t % (self.tau * self.pi) == 0:
            self._cloud_aggregate()
        return loss

    def _global_params(self) -> np.ndarray:
        return self.fed.global_average_workers(self.x)


class CFL(HierFAVG):
    """Resource-efficient hierarchical aggregation.

    Differs from HierFAVG in two communication-saving choices:

    1. the cloud round does NOT broadcast to workers — only the edge
       models are synchronized; workers receive the merged value at the
       next edge round, and
    2. each edge round pulls workers toward a blend of the fresh edge
       average and the edge's stored (cloud-synchronized) model, so the
       cloud information still propagates.
    """

    name = "CFL"

    def _setup(self) -> None:
        super()._setup()
        self._cloud_pending = [False] * self.fed.num_edges

    def _step(self, t: int) -> float:
        loss = self._local_iteration()
        if t % self.tau == 0:
            with get_tracer().span("edge_agg"):
                for edge in range(self.fed.num_edges):
                    fresh = self.fed.edge_average(edge, self.x)
                    if self._cloud_pending[edge]:
                        # Fold in the cloud model the workers never
                        # received.
                        merged = 0.5 * (fresh + self.edge_models[edge])
                        self._cloud_pending[edge] = False
                    else:
                        merged = fresh
                    self.edge_models[edge] = merged
                    self.x[self.fed.edge_slices[edge]] = merged
                self.history.comm.record_worker_edge(
                    2 * self.fed.num_workers
                )
        if t % (self.tau * self.pi) == 0:
            self._cloud_aggregate(to_workers=False)
            self._cloud_pending = [True] * self.fed.num_edges
        return loss
