"""Three-tier baseline algorithms without momentum (paper category ②).

* :class:`HierFAVG` — Liu et al. ICC'20 client–edge–cloud FedAvg: plain
  local SGD, edge model averaging every ``τ`` iterations, cloud averaging
  of edge models every ``τ·π`` iterations, full redistribution each time.

* :class:`CFL` — Wang et al. INFOCOM'21 resource-efficient hierarchical
  aggregation.  We implement its communication-saving core: the cloud
  round updates the *edge* models but does not broadcast all the way down
  to workers; workers pick up the cloud value at their next edge round.
  This halves cloud-to-worker broadcasts while staying within a τ-window
  of HierFAVG's trajectory, matching the near-identical accuracies the
  paper reports for the two baselines (Table II).  See DESIGN.md §3 for
  this substitution note.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FLAlgorithm
from repro.core.federation import Federation
from repro.faults import degrade_round
from repro.monitoring.monitor import get_monitor
from repro.telemetry import get_tracer
from repro.utils.validation import check_positive_int

__all__ = ["HierFAVG", "CFL"]


class HierFAVG(FLAlgorithm):
    """Hierarchical FedAvg (client–edge–cloud)."""

    name = "HierFAVG"

    CKPT_ARRAYS = ("x", "edge_models")

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 10,
        pi: int = 2,
    ):
        super().__init__(federation, eta=eta)
        self.tau = check_positive_int(tau, "tau")
        self.pi = check_positive_int(pi, "pi")

    def config(self) -> dict:
        return {"eta": self.eta, "tau": self.tau, "pi": self.pi}

    def _setup(self) -> None:
        self.x = self.fed.initial_worker_matrix()
        self.edge_models = self.fed.initial_edge_matrix()
        self._grads = np.empty_like(self.x)

    def _local_iteration(self) -> float:
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = self._iteration_rows()
            if rows is not None:
                mean_loss = self._gradient_iteration(self.x, rows)
                self.x[rows] -= self.eta * grads[rows]
                return mean_loss
            mean_loss = self._gradient_iteration(self.x)
            self.x -= self.eta * grads
            return mean_loss

    def _edge_aggregate(self, redistribute: bool = True, *, t: int = 0) -> None:
        with get_tracer().span("edge_agg"):
            fed = self.fed
            faults = self.faults
            if faults is None or not faults.active:
                fed.edge_average_all(self.x, out=self.edge_models)
                transfers = fed.num_workers  # uploads
                if redistribute:
                    for edge in range(fed.num_edges):
                        self.x[fed.edge_slices[edge]] = self.edge_models[edge]
                    transfers += fed.num_workers  # downloads
                self.history.comm.record_worker_edge(transfers)
                return
            edge_up = faults.edge_mask(t // self.tau)
            up_mask = self._up_mask
            transfers = 0
            for edge in range(fed.num_edges):
                rows = fed.edge_slices[edge]
                if edge_up is not None and not edge_up[edge]:
                    faults.note_round("skipped")
                    continue
                up = None if up_mask is None else up_mask[rows]
                outcome = degrade_round(
                    faults,
                    self.degradation,
                    fed.worker_w_in_edge[edge],
                    up,
                    downloads=redistribute,
                )
                if outcome.skip:
                    continue
                if outcome.pristine:
                    edge_model = fed.edge_average(edge, self.x)
                    receivers = rows
                    transfers += (rows.stop - rows.start) * (
                        2 if redistribute else 1
                    )
                else:
                    edge_model = fed.partial_average(
                        self.x,
                        rows.start + outcome.agg_rows,
                        outcome.agg_weights,
                    )
                    receivers = rows.start + outcome.receivers
                    transfers += outcome.events
                self.edge_models[edge] = edge_model
                if redistribute:
                    self.x[receivers] = edge_model
            if transfers:
                self.history.comm.record_worker_edge(transfers)

    def _push_cloud_model(self, edges, global_model: np.ndarray) -> int:
        """Broadcast the cloud model to the up workers of ``edges``.

        Returns the number of workers reached (LAN download events).
        """
        fed = self.fed
        up_mask = self._up_mask
        reached = 0
        for edge in edges:
            rows = fed.edge_slices[edge]
            if up_mask is None:
                self.x[rows] = global_model
                reached += rows.stop - rows.start
            else:
                widx = rows.start + np.flatnonzero(up_mask[rows])
                self.x[widx] = global_model
                reached += widx.size
        return reached

    def _cloud_aggregate(self, to_workers: bool = True, *, t: int = 0) -> None:
        with get_tracer().span("cloud_agg"):
            fed = self.fed
            faults = self.faults
            if faults is None or not faults.active:
                global_model = fed.cloud_average_edges(self.edge_models)
                self.edge_models[:] = global_model
                self.history.comm.record_edge_cloud(2 * fed.num_edges)
                if to_workers:
                    self.x[:] = global_model
                    # Post-cloud broadcast down to workers (LAN traffic;
                    # CFL skips exactly this).
                    self.history.comm.record_worker_edge(
                        fed.num_workers, rounds=0
                    )
                return
            edge_up = faults.edge_mask(t // self.tau)
            outcome = degrade_round(
                faults, self.degradation, fed.edge_w, edge_up
            )
            if outcome.skip:
                return
            # Staleness hits the WAN uploads even when the round is
            # otherwise pristine.
            models = faults.stale_substitute("cloud.models", self.edge_models)
            if outcome.pristine:
                global_model = fed.cloud_average_edges(models)
                self.edge_models[:] = global_model
                self.history.comm.record_edge_cloud(2 * fed.num_edges)
                if to_workers:
                    # All edges up, but the LAN push still skips workers
                    # that are down this iteration.
                    reached = self._push_cloud_model(
                        range(fed.num_edges), global_model
                    )
                    if reached:
                        self.history.comm.record_worker_edge(
                            reached, rounds=0
                        )
                return
            global_model = fed.partial_average(
                models, outcome.agg_rows, outcome.agg_weights
            )
            self.edge_models[outcome.receivers] = global_model
            self.history.comm.record_edge_cloud(outcome.events)
            if to_workers:
                reached = self._push_cloud_model(
                    outcome.receivers, global_model
                )
                if reached:
                    self.history.comm.record_worker_edge(reached, rounds=0)

    def _step(self, t: int) -> float:
        loss = self._local_iteration()
        monitor = get_monitor()
        if t % self.tau == 0:
            self._edge_aggregate(t=t)
            if monitor.enabled:
                monitor.emit(
                    "edge_round",
                    iteration=t,
                    tier="edge",
                    edges=self.fed.num_edges,
                )
        if t % (self.tau * self.pi) == 0:
            self._cloud_aggregate(t=t)
            if monitor.enabled:
                monitor.emit(
                    "cloud_round",
                    iteration=t,
                    tier="cloud",
                    edges=self.fed.num_edges,
                )
        return loss

    def _global_params(self) -> np.ndarray:
        return self.fed.global_average_workers(self.x)


class CFL(HierFAVG):
    """Resource-efficient hierarchical aggregation.

    Differs from HierFAVG in two communication-saving choices:

    1. the cloud round does NOT broadcast to workers — only the edge
       models are synchronized; workers receive the merged value at the
       next edge round, and
    2. each edge round pulls workers toward a blend of the fresh edge
       average and the edge's stored (cloud-synchronized) model, so the
       cloud information still propagates.
    """

    name = "CFL"

    CKPT_VALUES = ("_cloud_pending",)

    def _setup(self) -> None:
        super()._setup()
        self._cloud_pending = [False] * self.fed.num_edges

    def _step(self, t: int) -> float:
        loss = self._local_iteration()
        monitor = get_monitor()
        if t % self.tau == 0:
            with get_tracer().span("edge_agg"):
                self._cfl_edge_round(t)
            if monitor.enabled:
                monitor.emit(
                    "edge_round",
                    iteration=t,
                    tier="edge",
                    edges=self.fed.num_edges,
                )
        if t % (self.tau * self.pi) == 0:
            self._cloud_aggregate(to_workers=False, t=t)
            self._cloud_pending = [True] * self.fed.num_edges
            if monitor.enabled:
                monitor.emit(
                    "cloud_round",
                    iteration=t,
                    tier="cloud",
                    edges=self.fed.num_edges,
                )
        return loss

    def _cfl_edge_round(self, t: int) -> None:
        fed = self.fed
        faults = self.faults
        if faults is None or not faults.active:
            for edge in range(fed.num_edges):
                fresh = fed.edge_average(edge, self.x)
                if self._cloud_pending[edge]:
                    # Fold in the cloud model the workers never
                    # received.
                    merged = 0.5 * (fresh + self.edge_models[edge])
                    self._cloud_pending[edge] = False
                else:
                    merged = fresh
                self.edge_models[edge] = merged
                self.x[fed.edge_slices[edge]] = merged
            self.history.comm.record_worker_edge(2 * fed.num_workers)
            return
        edge_up = faults.edge_mask(t // self.tau)
        up_mask = self._up_mask
        transfers = 0
        for edge in range(fed.num_edges):
            rows = fed.edge_slices[edge]
            if edge_up is not None and not edge_up[edge]:
                # A dark edge keeps its pending cloud model for the next
                # round it is back up.
                faults.note_round("skipped")
                continue
            up = None if up_mask is None else up_mask[rows]
            outcome = degrade_round(
                faults, self.degradation, fed.worker_w_in_edge[edge], up
            )
            if outcome.skip:
                continue
            if outcome.pristine:
                fresh = fed.edge_average(edge, self.x)
                receivers = rows
                transfers += 2 * (rows.stop - rows.start)
            else:
                fresh = fed.partial_average(
                    self.x,
                    rows.start + outcome.agg_rows,
                    outcome.agg_weights,
                )
                receivers = rows.start + outcome.receivers
                transfers += outcome.events
            if self._cloud_pending[edge]:
                merged = 0.5 * (fresh + self.edge_models[edge])
                self._cloud_pending[edge] = False
            else:
                merged = fresh
            self.edge_models[edge] = merged
            self.x[receivers] = merged
        if transfers:
            self.history.comm.record_worker_edge(transfers)
