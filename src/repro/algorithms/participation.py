"""Partial worker participation (extension).

The paper's setting is cross-silo FL with full participation (§III-A),
but cross-device deployments sample a fraction of workers per round.
:class:`SampledFedAvg` implements the standard scheme on the two-tier
baseline: each round, a random subset of workers trains from the current
global model; the server averages only the participants (re-normalized
data weights).  Useful for studying how the paper's comparisons shift
under device sampling.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.twotier import TwoTierAlgorithm
from repro.core.federation import Federation
from repro.faults import degrade_round
from repro.telemetry import get_tracer
from repro.utils.rng import make_rng
from repro.utils.validation import check_in_range

__all__ = ["SampledFedAvg"]


class SampledFedAvg(TwoTierAlgorithm):
    """FedAvg with a random participant fraction per round."""

    name = "SampledFedAvg"

    CKPT_ARRAYS = TwoTierAlgorithm.CKPT_ARRAYS + ("server_params",)
    CKPT_VALUES = ("active",)

    def __init__(
        self,
        federation: Federation,
        *,
        eta: float = 0.01,
        tau: int = 20,
        participation: float = 0.5,
        rng=None,
    ):
        super().__init__(federation, eta=eta, tau=tau)
        check_in_range(participation, "participation", 0.0, 1.0)
        if participation <= 0.0:
            raise ValueError("participation must be > 0")
        self.participation = float(participation)
        self.rng = make_rng(rng)

    def config(self) -> dict:
        return {**super().config(), "participation": self.participation}

    def _setup(self) -> None:
        super()._setup()
        self.server_params = self.fed.initial_params()
        self._sample_round()

    def _sample_round(self) -> None:
        """Draw this round's participants (at least one)."""
        num_workers = self.fed.num_workers
        count = max(1, int(round(self.participation * num_workers)))
        chosen = self.rng.choice(num_workers, size=count, replace=False)
        self.active = sorted(int(i) for i in chosen)
        # Participants start from the server model.
        self.x[self.active] = self.server_params

    def _step(self, t: int) -> float:
        with get_tracer().span("worker_step"):
            grads = self._grads
            rows = np.asarray(self._train_rows())
            mean_loss = self._gradient_iteration(self.x, rows)
            self.x[rows] -= self.eta * grads[rows]
        if t % self.tau == 0:
            with get_tracer().span("cloud_agg"):
                weights = self.fed.global_worker_w[self.active]
                weights = weights / weights.sum()
                up = self._up_mask
                outcome = degrade_round(
                    self.faults,
                    self.degradation,
                    weights,
                    None if up is None else up[self.active],
                )
                if outcome.pristine:
                    self.server_params = weights @ self.x[self.active]
                    # Only the sampled workers exchange state this round.
                    self._record_round(len(self.active), t=t)
                    self._sample_round()
                elif not outcome.skip:
                    active = np.asarray(self.active)
                    self.server_params = (
                        outcome.agg_weights @ self.x[active[outcome.agg_rows]]
                    )
                    self._record_round(outcome=outcome, t=t)
                    self._sample_round()
                # A skipped round keeps this round's participants training
                # until the next scheduled aggregation.
        return mean_loss

    def _train_rows(self) -> list[int]:
        """This iteration's training set: sampled ∩ up (never empty)."""
        up = self._up_mask
        if up is None:
            return self.active
        rows = [worker for worker in self.active if up[worker]]
        return rows or self.active[:1]

    def _global_params(self) -> np.ndarray:
        return self.server_params.copy()

    # ``_setup`` consumes one sampling draw; restoring the recorded RNG
    # state afterwards (extras are restored last) rewinds it exactly.
    def checkpoint_extra(self) -> dict:
        return {"rng": self.rng.bit_generator.state}

    def restore_extra(self, extra: dict) -> None:
        self.rng.bit_generator.state = extra["rng"]
