"""Legacy setup shim: the offline environment has setuptools but no wheel,
so editable installs must go through ``setup.py develop``."""

from setuptools import setup

setup()
