#!/usr/bin/env python
"""Compare fresh ``BENCH_*.json`` results against committed baselines.

The ``benchmarks/`` suite writes machine-readable results into
``BENCH_<stem>.json`` at the repo root; those files are committed and
double as the performance record.  This checker diffs a fresh run
against the committed baselines and fails on a real regression:

* ``higher_better`` keys (speedups, throughputs) must not drop more
  than ``--tolerance`` (default 20%) below the baseline value;
* ``within_threshold`` keys (overhead ratios) must stay at or below
  the entry's own committed ``threshold`` field — the same absolute
  gate the bench asserts, re-checked from the recorded numbers.

Raw microsecond timings are deliberately *not* gated: they shift with
the machine, while ratios (speedup, overhead) are self-normalizing.
Missing files, entries or keys are reported but never fail the check —
a partial bench run only validates what it measured.

Usage::

    python tools/check_bench.py                 # self-check repo files
    python tools/check_bench.py --fresh OUT/    # diff OUT/ vs committed
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Default drop tolerance for higher_better keys (>20% = regression).
TOLERANCE = 0.2

# stem -> entry -> [(key, kind)]; kind in {"higher_better", "within_threshold"}
GATES = {
    "batched": {
        "gradient_pass_16worker_mlp": [("speedup", "higher_better")],
        "batched_cnn": [("speedup", "higher_better")],
    },
    "checkpoint": {
        "checkpoint_overhead": [("overhead", "within_threshold")],
    },
    "eventsim": {
        "engine_event_throughput": [("events_per_second", "higher_better")],
    },
    "faults": {
        "zero_plan_overhead": [("overhead", "within_threshold")],
    },
    "monitor": {
        "null_monitor_overhead": [("disabled_overhead", "within_threshold")],
        "jsonl_sink_throughput": [("events_per_sec", "higher_better")],
    },
    "population": {
        "bounded_memory": [("rss_ratio_1m_over_10k", "within_threshold")],
    },
    "substrate": {
        "hieradmo_iteration": [("speedup", "higher_better")],
        "plumbing_round": [("speedup", "higher_better")],
    },
    "telemetry": {
        "null_tracer_overhead": [("disabled_overhead", "within_threshold")],
    },
}


def _load_entries(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8")).get("entries", {})


def compare_entry(
    stem: str,
    entry: str,
    fresh: dict,
    baseline: dict,
    *,
    tolerance: float = TOLERANCE,
) -> tuple[list[str], list[str]]:
    """Gate one bench entry; returns (failures, notes)."""
    failures: list[str] = []
    notes: list[str] = []
    for key, kind in GATES[stem][entry]:
        value = fresh.get(key)
        if value is None:
            notes.append(f"{stem}/{entry}: key {key!r} missing, skipped")
            continue
        if kind == "higher_better":
            reference = baseline.get(key)
            if reference is None:
                notes.append(
                    f"{stem}/{entry}: no baseline for {key!r}, skipped"
                )
                continue
            floor = reference * (1.0 - tolerance)
            if value < floor:
                failures.append(
                    f"{stem}/{entry}.{key}: {value:g} fell more than "
                    f"{tolerance:.0%} below the baseline {reference:g}"
                )
        elif kind == "within_threshold":
            threshold = fresh.get("threshold")
            if threshold is None:
                notes.append(
                    f"{stem}/{entry}: no committed threshold, skipped"
                )
                continue
            if value > threshold:
                failures.append(
                    f"{stem}/{entry}.{key}: {value:g} exceeds the "
                    f"committed threshold {threshold:g}"
                )
        else:  # pragma: no cover - guarded by the GATES literal
            raise ValueError(f"unknown gate kind {kind!r}")
    return failures, notes


def check(
    fresh_dir: Path,
    baseline_dir: Path,
    *,
    tolerance: float = TOLERANCE,
) -> tuple[list[str], list[str]]:
    """Gate every configured bench file; returns (failures, notes)."""
    failures: list[str] = []
    notes: list[str] = []
    for stem, entries in sorted(GATES.items()):
        fresh_path = fresh_dir / f"BENCH_{stem}.json"
        baseline_path = baseline_dir / f"BENCH_{stem}.json"
        if not fresh_path.exists():
            notes.append(f"{stem}: no fresh {fresh_path.name}, skipped")
            continue
        fresh_entries = _load_entries(fresh_path)
        baseline_entries = (
            _load_entries(baseline_path) if baseline_path.exists() else {}
        )
        for entry in sorted(entries):
            fresh_entry = fresh_entries.get(entry)
            if fresh_entry is None:
                notes.append(f"{stem}/{entry}: not in fresh run, skipped")
                continue
            entry_failures, entry_notes = compare_entry(
                stem,
                entry,
                fresh_entry,
                baseline_entries.get(entry, {}),
                tolerance=tolerance,
            )
            failures.extend(entry_failures)
            notes.extend(entry_notes)
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=REPO_ROOT,
        help="directory holding the fresh BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=REPO_ROOT,
        help="directory holding the committed baselines (default: repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE,
        help="allowed fractional drop for higher-better keys (default 0.2)",
    )
    args = parser.parse_args(argv)
    failures, notes = check(
        args.fresh, args.baseline, tolerance=args.tolerance
    )
    for note in notes:
        print(f"note: {note}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench gates OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
