"""Table II's ± columns: seed-replicated accuracy (Logistic/MNIST).

The paper reports each Table-II cell as mean ± std over repeated runs;
this bench replicates the Logistic/MNIST column over 3 derived seeds and
checks that the headline ordering is stable under seed noise (HierAdMo's
mean stays within noise of the top and clearly above FedAvg's).
"""

from repro.experiments import ExperimentConfig
from repro.experiments.replication import format_replicated, run_replicated

from .conftest import run_once

ALGORITHMS = ("HierAdMo", "HierAdMo-R", "HierFAVG", "FedNAG", "FedAvg")

CONFIG = ExperimentConfig(
    dataset="mnist",
    model="logistic",
    num_samples=1600,
    eta=0.01,
    tau=10,
    pi=2,
    total_iterations=300,
    eval_every=75,
    seed=1,
)


def test_replicated_logistic_column(benchmark):
    def evaluate():
        results = []
        for name in ALGORITHMS:
            result, _ = run_replicated(name, CONFIG, num_seeds=3)
            results.append(result)
        return results

    results = run_once(benchmark, evaluate)
    print("\nLogistic/MNIST, mean ± std over 3 seeds:")
    print(format_replicated(results))

    by_name = {result.algorithm: result for result in results}
    top_mean = max(result.mean_accuracy for result in results)
    hier = by_name["HierAdMo"]
    # Ordering robust across seeds: HierAdMo within one joint std of the
    # top, and above FedAvg by more than both stds combined.
    assert hier.mean_accuracy >= top_mean - max(
        0.02, 2 * hier.std_accuracy
    )
    fedavg = by_name["FedAvg"]
    assert hier.mean_accuracy - fedavg.mean_accuracy > (
        hier.std_accuracy + fedavg.std_accuracy
    )
