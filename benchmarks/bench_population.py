"""Virtual-population scaling benchmark (PR acceptance: bounded RSS).

A million *registered* clients must cost what the *cohort* costs: the
registry stores metadata only, shards are generated on demand, and the
federation's stacked buffers hold one row per materialized slot.  This
bench trains the same fixed cohort (4 edges x 64 clients = 256 slots,
always <= 256) over populations of 10k, 100k and 1M registered
clients and records rounds/sec plus resident memory at each scale.

The gated number is the RSS ratio between the 1M and 10k runs: if any
per-client state leaked into the registry or binder, a 100x population
step would blow the ratio far past the committed threshold (a
fully-materialized design would sit near 100x).  Raw throughput is
recorded ungated — it shifts with the machine; the ratio does not.
"""

from __future__ import annotations

import gc
import time

from repro.algorithms import FedAvg
from repro.data.shards import PrototypeShards
from repro.nn.models import make_logistic_regression
from repro.population import ClientRegistry, PopulationBinder
from repro.utils.memory import current_rss_bytes, peak_rss_bytes

from .recorder import record_bench

# 4 edges x 64 per edge: fixed cohort of 256 materialized slots.
NUM_EDGES = 4
COHORT_PER_EDGE = 64
TAU = 5
ITERATIONS = 15  # three rebind periods per run
MAX_RSS_RATIO = 1.5

SIZES = (("10k", 10_000), ("100k", 100_000), ("1m", 1_000_000))


def _train_once(population: int) -> dict:
    shards = PrototypeShards(
        population,
        num_features=32,
        num_classes=10,
        samples_per_client=64,
        seed=11,
    )
    registry = ClientRegistry.from_shards(shards, NUM_EDGES, uniform=True)
    binder = PopulationBinder(
        registry, shards, cohort_per_edge=COHORT_PER_EDGE, seed=11
    )
    model = make_logistic_regression(32, 10, rng=4)
    binder.build_federation(model, shards.test_set(256), batch_size=32)
    algorithm = FedAvg(binder.fed, eta=0.05, tau=TAU)
    algorithm.attach_population(binder)

    start = time.perf_counter()
    algorithm.run(ITERATIONS, eval_every=ITERATIONS)
    elapsed = time.perf_counter() - start

    assert binder.fed.num_workers == NUM_EDGES * COHORT_PER_EDGE
    gc.collect()
    return {
        "population": population,
        "cohort": NUM_EDGES * COHORT_PER_EDGE,
        "iterations": ITERATIONS,
        "elapsed_s": elapsed,
        "rounds_per_sec": (ITERATIONS / TAU) / elapsed,
        "iterations_per_sec": ITERATIONS / elapsed,
        "rss_bytes": current_rss_bytes(),
        "peak_rss_bytes": peak_rss_bytes(),
        "materialized": len(binder._seen),
    }


def test_bench_population_scaling():
    """RSS is bounded by the cohort, not the registered population."""
    _train_once(10_000)  # warm-up: imports, BLAS pools, pymalloc arenas
    results = {}
    print(
        "\n[bench] virtual population scaling "
        f"(cohort {NUM_EDGES * COHORT_PER_EDGE}, tau {TAU})"
    )
    for label, population in SIZES:
        results[label] = _train_once(population)
        entry = results[label]
        print(
            f"  {label:>4}: {entry['rounds_per_sec']:7.2f} rounds/s, "
            f"rss {entry['rss_bytes'] / 2**20:7.1f} MiB, "
            f"{entry['materialized']} clients materialized"
        )
        record_bench("population", f"scaling_{label}", entry)

    ratio = results["1m"]["rss_bytes"] / results["10k"]["rss_bytes"]
    print(
        f"  rss ratio 1m/10k: {ratio:.3f} (threshold {MAX_RSS_RATIO})"
    )
    record_bench("population", "bounded_memory", {
        "rss_ratio_1m_over_10k": ratio,
        "rss_10k_bytes": results["10k"]["rss_bytes"],
        "rss_1m_bytes": results["1m"]["rss_bytes"],
        "threshold": MAX_RSS_RATIO,
    })
    assert ratio <= MAX_RSS_RATIO, (
        f"RSS grew {ratio:.2f}x from 10k to 1M registered clients; "
        "population-sized state leaked outside the cohort"
    )
