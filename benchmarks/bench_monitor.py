"""Monitoring overhead benchmarks (PR acceptance: disabled ≤ 2%).

Two gates on the run-event stream:

* ``null_monitor_overhead`` — the instrumented HierAdMo step under the
  null monitor (the default) against an unmonitored replica of the same
  step body; the guard must cost ≤ 2%;
* ``jsonl_sink_throughput`` — events per second through a live
  :class:`RunMonitor` into a line-buffered JSONL sink, pinned to a
  floor so streaming never silently becomes the bottleneck.

Results land in ``BENCH_monitor.json`` at the repo root.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import telemetry
from repro.core import Federation, HierAdMo
from repro.data import Dataset
from repro.monitoring import JSONLStreamSink, RunMonitor, set_monitor
from repro.nn.models import make_mlp

from .recorder import record_bench

# Acceptance threshold for the disabled-monitoring ("null monitor") path.
MAX_DISABLED_OVERHEAD = 0.02
# Floor for streaming-sink throughput (events per second).  Measured
# ~85k/s on the reference container; the pin sits far below so only a
# real regression (per-event re-serialization, unbuffered writes) trips.
MIN_SINK_EVENTS_PER_SEC = 20_000


def _time_min(fn, repeats=9, iters=20):
    """Best-of-repeats mean iteration time (robust to scheduler noise)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / iters


def _make_bench_federation(num_edges=4, per_edge=6):
    """Small MLP (dim 421), 24 workers across 4 edges."""
    rng = np.random.default_rng(7)
    edges = [
        [
            Dataset(rng.normal(size=(96, 20)), rng.integers(0, 5, 96), 5)
            for _ in range(per_edge)
        ]
        for _ in range(num_edges)
    ]
    model = make_mlp(20, (16,), 5, rng=8)
    return Federation(model, edges, edges[0][0], batch_size=8, seed=9)


def _make_algo():
    fed = _make_bench_federation()
    # tau=pi=1: every step crosses both instrumentation points (edge and
    # cloud round), the worst case for the monitoring guard.
    algo = HierAdMo(fed, tau=1, pi=1)
    algo.history = fed.new_history("bench", {})
    algo._setup()
    return fed, algo


def _unmonitored_step(algo, t):
    """The ``_step`` body with no monitoring calls, for the baseline."""
    loss = algo._worker_iteration()
    if t % algo.tau == 0:
        gammas = algo._edge_update(t)
        algo.history.record_gammas(gammas)
    if t % (algo.tau * algo.pi) == 0:
        algo._cloud_update(t)
    return loss


def test_bench_null_monitor_overhead():
    """Null-monitor step within 2% of the unmonitored replica."""
    telemetry.disable()
    set_monitor(None)  # the default, stated explicitly
    fed, algo = _make_algo()
    clock = iter(range(10**9))

    def unmonitored():
        _unmonitored_step(algo, next(clock))

    def live():
        algo._step(next(clock))

    unmonitored()  # warm-up both paths
    live()
    unmonitored_time = _time_min(unmonitored)
    disabled_time = _time_min(live)

    overhead = disabled_time / unmonitored_time - 1.0
    print(
        f"\n[bench] monitoring overhead, {fed.num_workers} workers, "
        f"dim={fed.dim}: unmonitored {unmonitored_time * 1e6:.0f} us, "
        f"null monitor {disabled_time * 1e6:.0f} us ({overhead:+.1%})"
    )
    record_bench("monitor", "null_monitor_overhead", {
        "workers": fed.num_workers,
        "dim": fed.dim,
        "unmonitored_us": unmonitored_time * 1e6,
        "disabled_us": disabled_time * 1e6,
        "disabled_overhead": overhead,
        "threshold": MAX_DISABLED_OVERHEAD,
    })
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"null-monitor step {overhead:+.1%} over the unmonitored "
        f"baseline (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_bench_jsonl_sink_throughput(tmp_path):
    """Streamed events per second through the hub stays above the pin."""
    events = 20_000
    sink = JSONLStreamSink(tmp_path / "bench.jsonl")
    hub = RunMonitor(sinks=[sink])

    start = time.perf_counter()
    for i in range(events):
        hub.emit(
            "eval",
            iteration=i,
            accuracy=0.5,
            test_loss=0.5,
            train_loss=0.5,
            total_bytes=float(i),
        )
    elapsed = time.perf_counter() - start
    hub.close()

    per_sec = events / elapsed
    per_event_us = elapsed / events * 1e6
    print(
        f"\n[bench] jsonl sink: {per_sec:,.0f} events/s "
        f"({per_event_us:.1f} us/event, {events} events)"
    )
    record_bench("monitor", "jsonl_sink_throughput", {
        "events": events,
        "events_per_sec": per_sec,
        "per_event_us": per_event_us,
        "floor_events_per_sec": MIN_SINK_EVENTS_PER_SEC,
    })
    assert per_sec >= MIN_SINK_EVENTS_PER_SEC, (
        f"streaming sink at {per_sec:,.0f} events/s, below the "
        f"{MIN_SINK_EVENTS_PER_SEC:,} floor"
    )
