"""Batched gradient-engine benchmark (PR acceptance gates).

One worker_step gradient pass, timed under both backends:

* ``loop``    — the sequential per-worker oracle (one small GEMM/conv
  stack per worker, Python dispatch between them);
* ``batched`` — the vectorized engine (stacked worker-axis GEMMs over
  the whole fleet).

Two configs are gated:

* the 16-worker MLP reference federation (floor: batched ≥ 3x loop);
* a 32-worker CNN federation with small local batches — the paper's
  many-device regime, exercising the conv/pool/norm lowerings
  (floor: batched ≥ 2x loop).

Results land in ``BENCH_batched.json`` at the repo root; the CI-safe
relaxed gate (no slower than loop) lives in
``tests/core/test_batched_backend.py``.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.core import Federation
from repro.data import Dataset
from repro.nn.models import make_cnn, make_mlp

from .recorder import record_bench

pytestmark = pytest.mark.batched

# Acceptance thresholds for the batched engine on the gated configs.
MIN_SPEEDUP = 3.0
MIN_CNN_SPEEDUP = 2.0

NUM_EDGES = 4
WORKERS_PER_EDGE = 4  # 16 workers total
FEATURES = 20
CLASSES = 5
BATCH_SIZE = 8

# CNN config: many workers, small local batches (the FL regime the
# paper targets), so per-worker Python dispatch dominates the loop.
CNN_NUM_EDGES = 8
CNN_WORKERS_PER_EDGE = 4  # 32 workers total
CNN_IMAGE_SIZE = 8
CNN_BATCH_SIZE = 4


def _time_min(fn, repeats=9, iters=20):
    """Best-of-repeats mean iteration time (robust to scheduler noise)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / iters


def _reference_federation(backend):
    """16-worker small-MLP federation, identically seeded per backend."""
    rng = np.random.default_rng(7)
    edges = [
        [
            Dataset(
                rng.normal(size=(96, FEATURES)),
                rng.integers(0, CLASSES, 96),
                CLASSES,
            )
            for _ in range(WORKERS_PER_EDGE)
        ]
        for _ in range(NUM_EDGES)
    ]
    model = make_mlp(FEATURES, (16,), CLASSES, rng=8)
    return Federation(
        model, edges, edges[0][0], batch_size=BATCH_SIZE, seed=9,
        backend=backend,
    )


def test_bench_batched_gradient_pass():
    """Batched worker_step at least 3x faster than the per-worker loop."""
    batched = _reference_federation("batched")
    loop = _reference_federation("loop")
    assert batched.gradient_backend == "batched"
    assert loop.gradient_backend == "loop"

    params = np.random.default_rng(4).normal(
        size=(batched.num_workers, batched.dim), scale=0.3
    )
    out = np.empty_like(params)

    batched.gradient_all(params, out=out)  # warm-up both paths
    loop.gradient_all(params, out=out)
    batched_time = _time_min(lambda: batched.gradient_all(params, out=out))
    loop_time = _time_min(lambda: loop.gradient_all(params, out=out))

    speedup = loop_time / batched_time
    print(
        f"\n[bench] batched gradient pass, {batched.num_workers} workers, "
        f"dim={batched.dim}, batch={BATCH_SIZE}: "
        f"loop {loop_time * 1e6:.0f} us, "
        f"batched {batched_time * 1e6:.0f} us ({speedup:.1f}x)"
    )
    record_bench("batched", "gradient_pass_16worker_mlp", {
        "workers": batched.num_workers,
        "dim": batched.dim,
        "batch_size": BATCH_SIZE,
        "loop_us": loop_time * 1e6,
        "batched_us": batched_time * 1e6,
        "speedup": speedup,
        "threshold": MIN_SPEEDUP,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"batched gradient pass only {speedup:.1f}x faster than the loop "
        f"(acceptance floor {MIN_SPEEDUP:.0f}x)"
    )


def _cnn_federation(backend):
    """32-worker small-CNN federation, identically seeded per backend."""
    rng = np.random.default_rng(7)
    edges = [
        [
            Dataset(
                rng.normal(
                    size=(48, 1, CNN_IMAGE_SIZE, CNN_IMAGE_SIZE)
                ),
                rng.integers(0, CLASSES, 48),
                CLASSES,
            )
            for _ in range(CNN_WORKERS_PER_EDGE)
        ]
        for _ in range(CNN_NUM_EDGES)
    ]
    model = make_cnn(1, CNN_IMAGE_SIZE, CLASSES, width=4, hidden=32, rng=8)
    return Federation(
        model, edges, edges[0][0], batch_size=CNN_BATCH_SIZE, seed=9,
        backend=backend,
    )


def test_bench_batched_cnn_gradient_pass():
    """Batched conv/pool worker_step at least 2x faster than the loop."""
    batched = _cnn_federation("batched")
    loop = _cnn_federation("loop")
    assert batched.gradient_backend == "batched"
    assert loop.gradient_backend == "loop"

    params = np.random.default_rng(4).normal(
        size=(batched.num_workers, batched.dim), scale=0.1
    )
    out = np.empty_like(params)

    batched.gradient_all(params, out=out)  # warm-up both paths
    loop.gradient_all(params, out=out)
    batched_time = _time_min(
        lambda: batched.gradient_all(params, out=out), repeats=5, iters=10
    )
    loop_time = _time_min(
        lambda: loop.gradient_all(params, out=out), repeats=5, iters=10
    )

    speedup = loop_time / batched_time
    print(
        f"\n[bench] batched CNN gradient pass, {batched.num_workers} "
        f"workers, dim={batched.dim}, batch={CNN_BATCH_SIZE}: "
        f"loop {loop_time * 1e6:.0f} us, "
        f"batched {batched_time * 1e6:.0f} us ({speedup:.1f}x)"
    )
    record_bench("batched", "batched_cnn", {
        "workers": batched.num_workers,
        "dim": batched.dim,
        "batch_size": CNN_BATCH_SIZE,
        "image_size": CNN_IMAGE_SIZE,
        "loop_us": loop_time * 1e6,
        "batched_us": batched_time * 1e6,
        "speedup": speedup,
        "threshold": MIN_CNN_SPEEDUP,
    })
    assert speedup >= MIN_CNN_SPEEDUP, (
        f"batched CNN gradient pass only {speedup:.1f}x faster than the "
        f"loop (acceptance floor {MIN_CNN_SPEEDUP:.0f}x)"
    )
