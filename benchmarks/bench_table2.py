"""Table II reproduction: accuracy of all 11 algorithms per combo.

Each test regenerates one column of the paper's Table II at CPU scale
(synthetic data, reduced T — see DESIGN.md §3) and checks the *shape*
claims:

* HierAdMo is at (or within a whisker of) the top,
* momentum beats no-momentum within each tier (① > ②, ③ > ④),
* the three-tier momentum family beats the two-tier one.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    TABLE2_ALGORITHMS,
    format_results_table,
    run_table2_column,
)

from .conftest import run_once

# CPU-scaled base: the paper uses T in {1000, 4000, 10000}; we use a few
# hundred iterations on synthetic corpora — enough for the ordering to
# stabilize, small enough for CI.
CONVEX_BASE = ExperimentConfig(
    num_samples=1600, total_iterations=300, eval_every=75, seed=1
)
DNN_BASE = ExperimentConfig(
    num_samples=900, total_iterations=120, eval_every=40, seed=1,
    batch_size=16,
)

THREE_TIER_MOMENTUM = ("HierAdMo", "HierAdMo-R")
THREE_TIER_PLAIN = ("HierFAVG", "CFL")
TWO_TIER_MOMENTUM = (
    "FastSlowMo", "FedADC", "FedMom", "SlowMo", "FedNAG", "Mime",
)


def _check_shape(column: dict, combo: str, slack: float = 0.03) -> None:
    top = max(column.values())
    hier = column["HierAdMo"]
    assert hier >= top - slack, (
        f"{combo}: HierAdMo at {hier:.3f} vs best {top:.3f}"
    )
    best_momentum_3 = max(column[a] for a in THREE_TIER_MOMENTUM)
    best_plain_3 = max(column[a] for a in THREE_TIER_PLAIN)
    assert best_momentum_3 >= best_plain_3 - slack, f"{combo}: ① vs ②"
    best_momentum_2 = max(column[a] for a in TWO_TIER_MOMENTUM)
    assert best_momentum_2 >= column["FedAvg"] - slack, f"{combo}: ③ vs ④"


def _run(combo: str, base: ExperimentConfig) -> dict:
    return run_table2_column(combo, base_config=base)


@pytest.mark.parametrize(
    "combo,base",
    [
        ("Linear/MNIST", CONVEX_BASE),
        ("Logistic/MNIST", CONVEX_BASE),
        ("CNN/UCI-HAR", CONVEX_BASE.with_overrides(total_iterations=200,
                                                   eval_every=50)),
    ],
)
def test_table2_convex_and_har(benchmark, combo, base):
    column = run_once(benchmark, _run, combo, base)
    print()
    print(format_results_table(
        {name: {combo: acc} for name, acc in column.items()},
        row_order=[a for a in TABLE2_ALGORITHMS],
        value_format="{:.4f}",
        title=f"Table II column: {combo}",
    ))
    _check_shape(column, combo)


@pytest.mark.parametrize(
    "combo",
    ["CNN/MNIST", "CNN/CIFAR10", "VGG16/CIFAR10", "ResNet18/ImageNet"],
)
def test_table2_deep(benchmark, combo):
    column = run_once(benchmark, _run, combo, DNN_BASE)
    print()
    print(format_results_table(
        {name: {combo: acc} for name, acc in column.items()},
        row_order=[a for a in TABLE2_ALGORITHMS],
        value_format="{:.4f}",
        title=f"Table II column: {combo}",
    ))
    # DNN columns at reduced T are noisier: check only the headline claim.
    top = max(column.values())
    assert column["HierAdMo"] >= top - 0.08, (
        f"{combo}: HierAdMo at {column['HierAdMo']:.3f} vs best {top:.3f}"
    )
