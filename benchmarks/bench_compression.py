"""Extension bench: quantized hierarchical FL (after Liu et al. [8]).

Measures the accuracy-vs-uplink-bytes trade-off of delta compression on
HierFAVG, and the straggler sensitivity of the two deployment shapes.
Not a paper artifact — it covers the communication-efficiency levers the
paper's related-work section positions HierAdMo against.
"""

from repro.algorithms.compressed import QuantizedHierFAVG
from repro.compression import NoCompression, TopKSparsifier, UniformQuantizer
from repro.experiments import ExperimentConfig, build_federation
from repro.experiments.timing import run_time_to_accuracy

from .conftest import run_once

CONFIG = ExperimentConfig(
    dataset="mnist",
    model="logistic",
    num_samples=1600,
    eta=0.02,
    tau=10,
    pi=2,
    total_iterations=200,
    eval_every=50,
    seed=9,
)


def test_compression_tradeoff(benchmark):
    def evaluate():
        out = {}
        for label, compressor in [
            ("float64", NoCompression()),
            ("q8", UniformQuantizer(8, rng=0)),
            ("q4", UniformQuantizer(4, rng=0)),
            ("top10%", TopKSparsifier(0.10)),
        ]:
            federation = build_federation(CONFIG)
            algo = QuantizedHierFAVG(
                federation, eta=CONFIG.eta, tau=CONFIG.tau, pi=CONFIG.pi,
                compressor=compressor,
            )
            history = algo.run(
                CONFIG.total_iterations, eval_every=CONFIG.eval_every
            )
            out[label] = (history.final_accuracy, algo.uplink_payload_bytes)
        return out

    results = run_once(benchmark, evaluate)
    print("\nscheme     accuracy     uplink bytes")
    baseline_bytes = results["float64"][1]
    for label, (accuracy, payload) in results.items():
        ratio = payload / baseline_bytes
        print(f"{label:<9} {accuracy:8.3f} {payload:14.0f}  ({ratio:.2%})")

    # 8-bit quantization: ~8x fewer bytes, (almost) no accuracy loss.
    assert results["q8"][1] < 0.2 * baseline_bytes
    assert results["q8"][0] >= results["float64"][0] - 0.05
    # top-10%: >5x fewer bytes, bounded accuracy loss.
    assert results["top10%"][1] < 0.2 * baseline_bytes
    assert results["top10%"][0] >= results["float64"][0] - 0.15


def test_straggler_sensitivity(benchmark):
    """Stragglers hurt, but the hierarchy keeps the damage local: the
    three-tier leader still beats the two-tier baselines."""

    def evaluate():
        return (
            run_time_to_accuracy(
                ("HierAdMo", "FedAvg"), target=0.85,
                base_config=CONFIG,
            ),
            run_time_to_accuracy(
                ("HierAdMo", "FedAvg"), target=0.85,
                base_config=CONFIG,
                straggler_probability=0.1, straggler_factor=8.0,
            ),
        )

    healthy, straggling = run_once(benchmark, evaluate)
    print("\n                 healthy    with stragglers")
    for name in ("HierAdMo", "FedAvg"):
        h = healthy[name].seconds
        s = straggling[name].seconds
        print(f"  {name:<12} {h and round(h,1)}s       {s and round(s,1)}s")
    assert straggling["HierAdMo"].seconds is not None
    assert straggling["HierAdMo"].seconds > healthy["HierAdMo"].seconds
    if straggling["FedAvg"].seconds is not None:
        assert (
            straggling["HierAdMo"].seconds <= straggling["FedAvg"].seconds
        )
