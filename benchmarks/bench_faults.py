"""Fault-injection overhead benchmark (PR acceptance: zero plan ≤ 2%).

Attaching the all-zero :class:`~repro.faults.FaultPlan` keeps the
injector inactive, so every algorithm runs its literal original code
path — the numerics are bit-exact (see ``tests/faults``) and the
runtime must stay within 2% of a run with no plan attached at all.
This bench times full short HierAdMo runs both ways on identically
seeded federations and records the ratio to ``BENCH_faults.json``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core import Federation, HierAdMo
from repro.data import Dataset
from repro.faults import FaultPlan
from repro.nn.models import make_mlp

from .recorder import record_bench

# Acceptance threshold for the attached-but-all-zero plan.
MAX_ZERO_PLAN_OVERHEAD = 0.02
ITERATIONS = 40


def _make_federation(num_edges=2, per_edge=4):
    rng = np.random.default_rng(3)
    edges = [
        [
            Dataset(rng.normal(size=(64, 20)), rng.integers(0, 5, 64), 5)
            for _ in range(per_edge)
        ]
        for _ in range(num_edges)
    ]
    model = make_mlp(20, (16,), 5, rng=4)
    return Federation(model, edges, edges[0][0], batch_size=8, seed=5)


def _timed_run(attach_zero_plan: bool) -> float:
    """Seconds for one fresh short HierAdMo run."""
    algo = HierAdMo(_make_federation(), tau=5, pi=2)
    if attach_zero_plan:
        algo.attach_faults(FaultPlan(seed=0))
    start = time.perf_counter()
    algo.run(ITERATIONS, eval_every=ITERATIONS)
    return time.perf_counter() - start


def test_bench_zero_plan_overhead():
    """A run with the all-zero plan attached within 2% of no plan."""
    _timed_run(False)  # warm-up (imports, caches)
    _timed_run(True)
    # Interleave the two arms so scheduler/thermal drift cancels out of
    # the best-of comparison instead of biasing one side.
    baseline = zero_plan = math.inf
    for _ in range(9):
        baseline = min(baseline, _timed_run(False))
        zero_plan = min(zero_plan, _timed_run(True))

    overhead = zero_plan / baseline - 1.0
    print(
        f"\n[bench] fault-plan overhead over {ITERATIONS} iterations: "
        f"no plan {baseline * 1e3:.1f} ms, zero plan "
        f"{zero_plan * 1e3:.1f} ms ({overhead:+.1%})"
    )
    record_bench("faults", "zero_plan_overhead", {
        "iterations": ITERATIONS,
        "baseline_ms": baseline * 1e3,
        "zero_plan_ms": zero_plan * 1e3,
        "overhead": overhead,
        "threshold": MAX_ZERO_PLAN_OVERHEAD,
    })
    assert overhead <= MAX_ZERO_PLAN_OVERHEAD, (
        f"zero-fault plan run {overhead:+.1%} over the no-plan baseline "
        f"(budget {MAX_ZERO_PLAN_OVERHEAD:.0%})"
    )
