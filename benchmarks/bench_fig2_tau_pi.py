"""Fig. 2 (a)–(c): effects of τ, π and their product on HierAdMo.

Checks the paper's monotonicity claims at equal T:

* (a) larger τ (fixed π) hurts,
* (b) larger π (fixed τ) hurts,
* (c) at fixed τ·π, smaller τ (more frequent edge aggregation) wins.

The accuracy differences are small (as in the paper's figure), so the
assertions allow a small slack while the printed series records the
exact values.
"""

from repro.experiments import (
    fig2_sweep_config,
    run_fixed_product_sweep,
    run_pi_sweep,
    run_tau_sweep,
)

from .conftest import run_once

BASE = fig2_sweep_config(
    num_samples=2000,
    total_iterations=200,
    eval_every=50,
    batch_size=16,
    seed=2,
)
SLACK = 0.02


def test_fig2a_tau_effect(benchmark):
    out = run_once(
        benchmark, run_tau_sweep, (5, 10, 20), pi=2, base_config=BASE
    )
    print("\nFig 2(a): accuracy vs tau (pi=2)")
    finals = {}
    for tau, history in sorted(out.items()):
        finals[tau] = history.final_accuracy
        print(f"  tau={tau:3d}: " + " ".join(
            f"{a:.3f}" for a in history.test_accuracy))
    assert finals[5] >= finals[20] - SLACK, finals


def test_fig2b_pi_effect(benchmark):
    out = run_once(
        benchmark, run_pi_sweep, (1, 2, 4), tau=10, base_config=BASE
    )
    print("\nFig 2(b): accuracy vs pi (tau=10)")
    finals = {}
    for pi, history in sorted(out.items()):
        finals[pi] = history.final_accuracy
        print(f"  pi={pi:3d}: " + " ".join(
            f"{a:.3f}" for a in history.test_accuracy))
    assert finals[1] >= finals[4] - SLACK, finals


def test_fig2c_fixed_product(benchmark):
    pairs = ((5, 8), (10, 4), (20, 2), (40, 1))
    out = run_once(
        benchmark, run_fixed_product_sweep, pairs, base_config=BASE
    )
    print("\nFig 2(c): accuracy vs (tau, pi) at tau*pi=40")
    mean_curve = {}
    for (tau, pi), history in sorted(out.items()):
        # Average accuracy over the curve: at CPU scale the finals meet,
        # so the paper's "smaller tau converges faster" claim shows in
        # the curve average (how quickly accuracy is reached).
        mean_curve[tau] = sum(history.test_accuracy) / len(
            history.test_accuracy
        )
        print(f"  tau={tau:3d}, pi={pi}: " + " ".join(
            f"{a:.3f}" for a in history.test_accuracy))
    assert mean_curve[5] >= mean_curve[40] - SLACK, mean_curve
    assert mean_curve[10] >= mean_curve[40] - SLACK, mean_curve
