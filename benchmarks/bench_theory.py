"""Theory self-checks: Theorems 1–5 as executable artifacts.

Regenerates the analysis-side claims the paper states around Theorem 4
(monotonicity of h, s, j in τ and π) and Theorem 5 / Appendix E
(E[γℓ] = 1/4 vs 1/2, the tighter bound under adaptation), and evaluates
the full Theorem-4 bound on estimated constants from a real federation.
"""

import numpy as np

from repro.experiments import ExperimentConfig, build_federation
from repro.theory import (
    MomentumConstants,
    adaptive_gamma_moments,
    estimate_gradient_diversity,
    estimate_lipschitz,
    estimate_smoothness,
    fixed_gamma_moments,
    h_gap,
    j_gap,
    s_gap,
    theorem4_bound,
    theorem5_gap_ratio,
)

from .conftest import run_once


def test_gap_function_series(benchmark):
    """Print and check the h/s/j series the Theorem-4 discussion describes."""

    def evaluate():
        constants = MomentumConstants.from_hyperparameters(0.01, 1.0, 0.5)
        taus = (1, 2, 5, 10, 20, 40)
        h_series = [h_gap(tau, 1.0, constants) for tau in taus]
        s_series = [s_gap(tau, 0.5, 0.01, 1.0, 0.5, 0.5) for tau in taus]
        j_series = [
            j_gap(tau, 2, np.array([1.0, 1.0]), 1.0,
                  np.array([0.5, 0.5]), constants,
                  gamma_edge=0.5, rho=1.0, mu=0.5)
            for tau in taus
        ]
        return taus, h_series, s_series, j_series

    taus, h_series, s_series, j_series = run_once(benchmark, evaluate)
    print("\ntau      h(tau,1)      s(tau)     j(tau,2)")
    for tau, h, s, j in zip(taus, h_series, s_series, j_series):
        print(f"{tau:3d}  {h:10.5f}  {s:10.5f}  {j:10.5f}")
    for series in (h_series, s_series, j_series):
        assert all(b > a for a, b in zip(series, series[1:]))


def test_theorem5_moments(benchmark):
    """E[γℓ]=1/4 (adaptive) vs 1/2 (fixed) and the resulting gap ratio."""

    def evaluate():
        return (
            adaptive_gamma_moments(cap=1.0),
            fixed_gamma_moments(),
            theorem5_gap_ratio(cap=1.0),
        )

    (a_mean, a_var), (f_mean, f_var), ratio = run_once(benchmark, evaluate)
    print(f"\nadaptive: mean={a_mean:.4f} (1/4), var={a_var:.4f} (5/48)")
    print(f"fixed:    mean={f_mean:.4f} (1/2), var={f_var:.4f} (1/12)")
    print(f"gap ratio adaptive/fixed = {ratio:.3f}")
    assert a_mean == 0.25
    assert abs(a_var - 5 / 48) < 1e-12
    assert ratio == 0.5


def test_theorem1_empirical_bound(benchmark):
    """Theorem 1, executed: the real-vs-virtual gap stays under
    h(offset, δ̂ℓ) with constants measured on the same federation."""
    from repro.theory import edge_virtual_gap_trace

    def evaluate():
        config = ExperimentConfig(
            dataset="mnist", model="logistic", num_samples=400,
            total_iterations=10, seed=11,
        )
        federation = build_federation(config)
        eta, gamma, tau = 0.02, 0.5, 5
        trace = edge_virtual_gap_trace(
            federation, eta=eta, gamma=gamma, tau=tau, num_intervals=3,
            record_points=True,
        )
        # Estimate the Assumption-1/3 constants at the points the real
        # trajectory actually visited: the bound is stated for constants
        # valid there, and random far-away probes under-estimate them.
        points = trace.visited_points[:: max(
            1, len(trace.visited_points) // 20
        )]
        beta = estimate_smoothness(federation, points=points, rng=0)
        _, delta_edges, _ = estimate_gradient_diversity(
            federation, points=points, rng=0
        )
        constants = MomentumConstants.from_hyperparameters(eta, beta, gamma)
        rows = []
        for offset in range(1, tau + 1):
            observed = max(
                trace.max_gap_at_offset(edge, offset)
                for edge in range(federation.num_edges)
            )
            bound = max(
                h_gap(offset, delta, constants) for delta in delta_edges
            )
            rows.append((offset, observed, bound))
        return rows

    rows = run_once(benchmark, evaluate)
    print("\noffset   observed gap   h(offset, delta) bound")
    for offset, observed, bound in rows:
        print(f"{offset:4d}     {observed:10.5f}   {bound:12.5f}")
        # Absolute floor covers offset 1, where both sides are
        # analytically zero and only float roundoff remains.
        assert observed <= bound * 1.05 + 1e-9


def test_theorem4_bound_on_estimated_constants(benchmark):
    """Evaluate the closed-form bound with constants measured on a real
    federation and verify the O(1/T) scaling plus the adaptive tightening."""

    def evaluate():
        config = ExperimentConfig(
            dataset="mnist", model="logistic", num_samples=800,
            total_iterations=100, seed=7,
        )
        federation = build_federation(config)
        beta = estimate_smoothness(federation, num_points=4, rng=0)
        rho = estimate_lipschitz(federation, num_points=4, rng=0)
        _, delta_edges, delta_global = estimate_gradient_diversity(
            federation, num_points=3, rng=0
        )
        # Scale diversity into the condition-(2.1)-feasible regime: the
        # bound is evaluated at a coarse target accuracy epsilon.
        shared = dict(
            tau=10, pi=2, eta=0.01, beta=beta, gamma=0.5,
            rho=rho, mu=0.3,
            delta_edges=delta_edges / 10, delta_global=delta_global / 10,
            edge_weights=federation.edge_w,
            omega=50.0, sigma=1.0, epsilon=2.0,
        )
        bound_t1 = theorem4_bound(total_iterations=1000, gamma_edge=0.25,
                                  **shared)
        bound_t2 = theorem4_bound(total_iterations=2000, gamma_edge=0.25,
                                  **shared)
        bound_fixed = theorem4_bound(total_iterations=1000, gamma_edge=0.5,
                                     **shared)
        return beta, rho, delta_global, bound_t1, bound_t2, bound_fixed

    beta, rho, delta_global, b1, b2, bf = run_once(benchmark, evaluate)
    print(f"\nestimated beta={beta:.3f}, rho={rho:.3f}, "
          f"delta={delta_global:.3f}")
    print(f"bound(T=1000, adaptive E[gamma_l]=1/4) = {b1.bound:.5f}")
    print(f"bound(T=2000, adaptive)                = {b2.bound:.5f}")
    print(f"bound(T=1000, fixed gamma_l=1/2)       = {bf.bound:.5f}")
    assert b2.bound < b1.bound  # O(1/T)
    assert b1.bound < bf.bound  # Theorem 5: adaptation tightens
