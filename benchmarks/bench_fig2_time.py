"""Fig. 2 (h)/(l): trace-driven total training time to a target accuracy.

Replays each algorithm's accuracy trace against the device/link delay
models under the paper's two settings:

* setting 1: γ = γℓ = 0.5, τ=10/π=2 (three-tier) vs τ=20 (two-tier),
* setting 2: γ = γℓ = 0.5, τ=20/π=2 (three-tier) vs τ=40 (two-tier).

Shape targets (paper: HierAdMo 360.97s/351.59s vs baselines
458.48s–1544.76s, i.e. 1.30x–4.36x speedups): HierAdMo reaches the
target first, with a ≥1.2x speedup over every baseline that reaches it.
"""

from repro.experiments import (
    ExperimentConfig,
    run_time_to_accuracy,
)

from .conftest import run_once

ALGORITHMS = (
    "HierAdMo",
    "HierAdMo-R",
    "HierFAVG",
    "CFL",
    "FastSlowMo",
    "FedADC",
    "FedMom",
    "SlowMo",
    "FedNAG",
    "Mime",
    "FedAvg",
)
TARGET = 0.90


def _report(results, setting):
    print(f"\nFig 2({setting}): simulated time to reach {TARGET} accuracy")
    reference = results["HierAdMo"].seconds
    for name in ALGORITHMS:
        result = results[name]
        if result.seconds is None:
            print(f"  {name:<12} never reached "
                  f"(final {result.final_accuracy:.3f})")
            continue
        speedup = (
            f"  ({result.seconds / reference:.2f}x)"
            if reference and name != "HierAdMo"
            else ""
        )
        print(f"  {name:<12} {result.seconds:8.1f}s at iteration "
              f"{result.iteration}{speedup}")


def _check(results):
    hier = results["HierAdMo"]
    assert hier.seconds is not None, "HierAdMo never reached the target"
    reached = [
        r.seconds for n, r in results.items()
        if n != "HierAdMo" and r.seconds is not None
    ]
    assert reached, "no baseline reached the target; raise T"
    for seconds in reached:
        assert seconds >= hier.seconds, (
            "a baseline beat HierAdMo to the target"
        )
    # The paper reports 1.30x-4.36x; require a clear win over the slowest.
    assert max(reached) / hier.seconds >= 1.2


def test_fig2h_setting1(benchmark):
    config = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=1600,
        eta=0.02,
        tau=10,
        pi=2,
        total_iterations=400,
        eval_every=10,
        seed=5,
    )
    results = run_once(
        benchmark, run_time_to_accuracy, ALGORITHMS,
        target=TARGET, base_config=config,
    )
    _report(results, "h")
    _check(results)


def test_fig2l_setting2(benchmark):
    config = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=1600,
        eta=0.02,
        tau=20,
        pi=2,
        total_iterations=400,
        eval_every=10,
        seed=5,
    )
    results = run_once(
        benchmark, run_time_to_accuracy, ALGORITHMS,
        target=TARGET, base_config=config,
    )
    _report(results, "l")
    _check(results)
