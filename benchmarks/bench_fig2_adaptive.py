"""Fig. 2 (i)–(k): adaptive γℓ vs exhaustive enumeration of fixed γℓ.

For γ ∈ {0.3, 0.6, 0.9} the paper shows the best *fixed* γℓ moves
(0.9, 0.8, 0.2 in their panels) while the adaptive run stays at or near
the best.  Shape target: adaptive within a small margin of the best
fixed value in every panel, while no single fixed γℓ achieves that.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    best_fixed_gamma,
    run_adaptive_comparison,
)

from .conftest import run_once

BASE = ExperimentConfig(
    dataset="mnist",
    model="logistic",
    num_samples=2000,
    eta=0.01,
    tau=10,
    pi=2,
    total_iterations=300,
    eval_every=100,
    seed=6,
)
GRID = (0.1, 0.3, 0.5, 0.7, 0.9)
MARGIN = 0.03

_panel_results: dict[float, dict[str, float]] = {}


@pytest.mark.parametrize("gamma", [0.3, 0.6, 0.9])
def test_fig2ijk_panel(benchmark, gamma):
    results = run_once(
        benchmark, run_adaptive_comparison, gamma,
        fixed_grid=GRID, base_config=BASE,
    )
    _panel_results[gamma] = results
    best, best_accuracy = best_fixed_gamma(results)
    print(f"\nFig 2 panel gamma={gamma}:")
    for key in ["adaptive"] + [f"fixed:{g:.1f}" for g in GRID]:
        marker = " <== best fixed" if key == f"fixed:{best:.1f}" else ""
        print(f"  {key:<10} {results[key]:.3f}{marker}")
    assert results["adaptive"] >= best_accuracy - MARGIN, (
        f"adaptive {results['adaptive']:.3f} vs best fixed "
        f"gamma_l={best} at {best_accuracy:.3f}"
    )


def test_fig2ijk_no_single_fixed_wins_everywhere(benchmark):
    """The paper's point: the best fixed γℓ differs per setting, so only
    the adaptive scheme is near-optimal across all three panels."""

    def evaluate():
        # Reuse panel results when the parametrized tests already ran;
        # compute any missing panel.
        for gamma in (0.3, 0.6, 0.9):
            if gamma not in _panel_results:
                _panel_results[gamma] = run_adaptive_comparison(
                    gamma, fixed_grid=GRID, base_config=BASE
                )
        return _panel_results

    panels = run_once(benchmark, evaluate)
    print("\nWorst-case gap to the per-panel best, per policy:")
    policies = ["adaptive"] + [f"fixed:{g:.1f}" for g in GRID]
    worst_gap = {}
    for policy in policies:
        gap = max(
            max(p.values()) - p[policy] for p in panels.values()
        )
        worst_gap[policy] = gap
        print(f"  {policy:<10} worst gap {gap:.3f}")
    # Adaptive's worst-case gap beats every fixed policy's.
    best_fixed_policy_gap = min(
        gap for policy, gap in worst_gap.items() if policy != "adaptive"
    )
    assert worst_gap["adaptive"] <= best_fixed_policy_gap + 0.01
