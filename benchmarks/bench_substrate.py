"""Micro-benchmarks of the training substrate.

These use pytest-benchmark's statistical timing (many rounds) because
they measure steady-state kernel cost, not experiment outcomes: conv
forward/backward throughput, dense gradient cost, flat-vector
aggregation vs a naive per-layer loop (DESIGN.md §6 decision 1), and
the full HierAdMo iteration cost.
"""

import numpy as np

from repro.core import Federation, HierAdMo
from repro.data import Dataset
from repro.nn.models import make_cnn, make_logistic_regression
from repro.utils.flatten import flatten_arrays, unflatten_like

RNG = np.random.default_rng(0)


def test_bench_cnn_gradient(benchmark):
    model = make_cnn(1, 10, 10, width=8, hidden=32, rng=0)
    x = RNG.normal(size=(32, 1, 10, 10))
    y = RNG.integers(0, 10, 32)
    params = model.get_flat_params()
    benchmark(model.gradient, x, y, params)


def test_bench_logistic_gradient(benchmark):
    model = make_logistic_regression(100, 10, rng=0)
    x = RNG.normal(size=(64, 100))
    y = RNG.integers(0, 10, 64)
    params = model.get_flat_params()
    benchmark(model.gradient, x, y, params)


def test_bench_flat_aggregation(benchmark):
    """Weighted average of 16 flat parameter vectors (the hot FL path)."""
    dim = 100_000
    vectors = [RNG.normal(size=dim) for _ in range(16)]
    weights = np.full(16, 1 / 16)

    def aggregate():
        out = np.zeros(dim)
        for weight, vector in zip(weights, vectors):
            out += weight * vector
        return out

    result = benchmark(aggregate)
    assert result.shape == (dim,)


def test_bench_per_layer_aggregation(benchmark):
    """Ablation counterpart: the same average over 12 ragged layers.

    Compare with test_bench_flat_aggregation in the report — the flat
    layout wins by avoiding per-layer Python overhead.
    """
    shapes = [(64, 128), (64,), (128, 256), (128,)] * 3
    models = [
        [RNG.normal(size=shape) for shape in shapes] for _ in range(16)
    ]
    weights = np.full(16, 1 / 16)

    def aggregate():
        out = [np.zeros(shape) for shape in shapes]
        for weight, layers in zip(weights, models):
            for accumulator, layer in zip(out, layers):
                accumulator += weight * layer
        return out

    benchmark(aggregate)


def test_bench_flatten_roundtrip(benchmark):
    arrays = [RNG.normal(size=(64, 128)), RNG.normal(size=(128, 256)),
              RNG.normal(size=(256,))]

    def roundtrip():
        return unflatten_like(flatten_arrays(arrays), arrays)

    benchmark(roundtrip)


def test_bench_hieradmo_iteration(benchmark):
    """One full HierAdMo local iteration across 4 workers."""
    rng = np.random.default_rng(1)
    edges = []
    for _ in range(2):
        edge = []
        for _ in range(2):
            edge.append(Dataset(
                rng.normal(size=(64, 50)), rng.integers(0, 5, 64), 5
            ))
        edges.append(edge)
    model = make_logistic_regression(50, 5, rng=2)
    federation = Federation(model, edges, edges[0][0], batch_size=32, seed=3)
    algo = HierAdMo(federation, tau=1000, pi=1)
    algo.history = federation.new_history("bench", {})
    algo._setup()
    benchmark(algo._worker_iteration)
