"""Micro-benchmarks of the training substrate.

These use pytest-benchmark's statistical timing (many rounds) because
they measure steady-state kernel cost, not experiment outcomes: conv
forward/backward throughput, dense gradient cost, flat-vector
aggregation vs a naive per-layer loop (DESIGN.md §6 decision 1), and
the full HierAdMo iteration cost.
"""

import math
import time

import numpy as np

from repro.core import Federation, HierAdMo
from repro.core.adaptive import AdaptiveGammaController
from repro.data import Dataset
from repro.nn.models import make_cnn, make_logistic_regression, make_mlp
from repro.utils.flatten import flatten_arrays, unflatten_like

from .recorder import record_bench

RNG = np.random.default_rng(0)


def test_bench_cnn_gradient(benchmark):
    model = make_cnn(1, 10, 10, width=8, hidden=32, rng=0)
    x = RNG.normal(size=(32, 1, 10, 10))
    y = RNG.integers(0, 10, 32)
    params = model.get_flat_params()
    benchmark(model.gradient, x, y, params)


def test_bench_logistic_gradient(benchmark):
    model = make_logistic_regression(100, 10, rng=0)
    x = RNG.normal(size=(64, 100))
    y = RNG.integers(0, 10, 64)
    params = model.get_flat_params()
    benchmark(model.gradient, x, y, params)


def test_bench_flat_aggregation(benchmark):
    """Weighted average of 16 flat parameter vectors (the hot FL path)."""
    dim = 100_000
    vectors = [RNG.normal(size=dim) for _ in range(16)]
    weights = np.full(16, 1 / 16)

    def aggregate():
        out = np.zeros(dim)
        for weight, vector in zip(weights, vectors):
            out += weight * vector
        return out

    result = benchmark(aggregate)
    assert result.shape == (dim,)


def test_bench_per_layer_aggregation(benchmark):
    """Ablation counterpart: the same average over 12 ragged layers.

    Compare with test_bench_flat_aggregation in the report — the flat
    layout wins by avoiding per-layer Python overhead.
    """
    shapes = [(64, 128), (64,), (128, 256), (128,)] * 3
    models = [
        [RNG.normal(size=shape) for shape in shapes] for _ in range(16)
    ]
    weights = np.full(16, 1 / 16)

    def aggregate():
        out = [np.zeros(shape) for shape in shapes]
        for weight, layers in zip(weights, models):
            for accumulator, layer in zip(out, layers):
                accumulator += weight * layer
        return out

    benchmark(aggregate)


def test_bench_stacked_aggregation(benchmark):
    """GEMM counterpart of test_bench_flat_aggregation.

    The buffer-backed runtime keeps worker state stacked in one
    (num_workers, dim) matrix, so the same weighted average is a single
    ``weights @ matrix`` product with no Python-level loop at all.
    """
    dim = 100_000
    matrix = RNG.normal(size=(16, dim))
    weights = np.full(16, 1 / 16)

    result = benchmark(lambda: weights @ matrix)
    assert result.shape == (dim,)


def test_bench_flatten_roundtrip(benchmark):
    arrays = [RNG.normal(size=(64, 128)), RNG.normal(size=(128, 256)),
              RNG.normal(size=(256,))]

    def roundtrip():
        return unflatten_like(flatten_arrays(arrays), arrays)

    benchmark(roundtrip)


def test_bench_hieradmo_iteration(benchmark):
    """One full HierAdMo local iteration across 4 workers."""
    rng = np.random.default_rng(1)
    edges = []
    for _ in range(2):
        edge = []
        for _ in range(2):
            edge.append(Dataset(
                rng.normal(size=(64, 50)), rng.integers(0, 5, 64), 5
            ))
        edges.append(edge)
    model = make_logistic_regression(50, 5, rng=2)
    federation = Federation(model, edges, edges[0][0], batch_size=32, seed=3)
    algo = HierAdMo(federation, tau=1000, pi=1)
    algo.history = federation.new_history("bench", {})
    algo._setup()
    benchmark(algo._worker_iteration)


# ----------------------------------------------------------------------
# Before/after: the buffer-backed runtime vs the seed-era hot path
# ----------------------------------------------------------------------
def _legacy_parameters(module):
    """Seed-era parameter collection: a fresh tree walk on every call."""
    params = list(module._params.values())
    for child in module._children.values():
        params.extend(_legacy_parameters(child))
    return params


def _legacy_modules(module):
    """Seed-era ``modules()``: also an uncached walk (used by train())."""
    out = [module]
    for child in module._children.values():
        out.extend(_legacy_modules(child))
    return out


def _legacy_gradient(model, x, y, params):
    """Seed-era gradient oracle, walk for walk.

    The seed re-collected ``parameters()`` on every flat-access method:
    twice in ``set_flat_params`` (shapes, then the copy loop), once in
    ``zero_grad`` and once in ``get_flat_grads`` — four tree walks per
    gradient call — plus the unflatten slicing copies and a fresh
    concatenation of the per-parameter gradients on the way out.
    """
    module = model.module
    blocks = unflatten_like(params, [p.data for p in _legacy_parameters(module)])
    for param, block in zip(_legacy_parameters(module), blocks):
        np.copyto(param.data, block)
    for m in _legacy_modules(module):
        object.__setattr__(m, "training", True)
    for param in _legacy_parameters(module):
        param.grad.fill(0.0)
    predictions = module.forward(x)
    loss = model.loss_fn.forward(predictions, y)
    module.backward(model.loss_fn.backward())
    return flatten_arrays([p.grad for p in _legacy_parameters(module)]), float(loss)


def _time_min(fn, repeats=7, iters=10):
    """Best-of-repeats mean iteration time (robust to scheduler noise)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / iters


def _make_bench_federation(num_edges=4, per_edge=6):
    """Small MLP (dim 421), 24 workers across 4 edges."""
    rng = np.random.default_rng(7)
    edges = [
        [
            Dataset(rng.normal(size=(96, 20)), rng.integers(0, 5, 96), 5)
            for _ in range(per_edge)
        ]
        for _ in range(num_edges)
    ]
    model = make_mlp(20, (16,), 5, rng=8)
    return Federation(model, edges, edges[0][0], batch_size=8, seed=9)


def test_bench_buffered_vs_legacy_plumbing():
    """Before/after micro-benchmark of the paths the refactor changed.

    Measures one federated "plumbing round" with the forward/backward
    math (identical either way) excluded: per worker, the gradient-oracle
    bookkeeping — set parameters from a flat vector, zero the gradients,
    read the flat gradient back — then per edge, the weighted aggregation
    and redistribution.  ``legacy`` reproduces the seed implementations
    walk for walk (fresh ``parameters()`` tree walks per flat-access
    call, unflatten/flatten copies, Python-loop weighted sums over
    per-worker vectors, per-worker redistribution copies); ``buffered``
    is the live code (one ``np.copyto`` / ``fill`` / zero-copy view per
    oracle call, one GEMM + row broadcast per edge).  Acceptance target
    from the refactor issue: ≥ 2× on a small MLP with ≥ 20 workers.
    """
    fed = _make_bench_federation()
    model, module, dim = fed.model, fed.model.module, fed.dim
    rng = np.random.default_rng(10)
    stacked = rng.normal(size=(fed.num_workers, dim))
    grad_matrix = np.empty_like(stacked)
    xs = [row.copy() for row in stacked]

    def legacy_round():
        for worker in range(fed.num_workers):
            blocks = unflatten_like(
                xs[worker], [p.data for p in _legacy_parameters(module)]
            )
            for param, block in zip(_legacy_parameters(module), blocks):
                np.copyto(param.data, block)
            for param in _legacy_parameters(module):
                param.grad.fill(0.0)
            flatten_arrays([p.grad for p in _legacy_parameters(module)])
        for edge in range(fed.num_edges):
            rows = fed.edge_slices[edge]
            average = np.zeros(dim)
            for weight, index in zip(
                fed.worker_w_in_edge[edge], range(rows.start, rows.stop)
            ):
                average += weight * xs[index]
            for index in range(rows.start, rows.stop):
                xs[index] = average.copy()

    def buffered_round():
        for worker in range(fed.num_workers):
            module.set_flat_params(stacked[worker])
            module.zero_grad()
            np.copyto(grad_matrix[worker], module.get_flat_grads())
        averages = fed.edge_average_all(stacked)
        for edge in range(fed.num_edges):
            stacked[fed.edge_slices[edge]] = averages[edge]

    legacy_round()  # warm-up both paths
    buffered_round()
    legacy_time = _time_min(legacy_round)
    buffered_time = _time_min(buffered_round)
    speedup = legacy_time / buffered_time
    print(
        f"\n[bench] oracle+aggregation plumbing, {fed.num_workers} workers, "
        f"dim={dim}: legacy {legacy_time * 1e6:.0f} us, "
        f"buffered {buffered_time * 1e6:.0f} us -> {speedup:.1f}x"
    )
    record_bench("substrate", "plumbing_round", {
        "workers": fed.num_workers,
        "dim": dim,
        "legacy_us": legacy_time * 1e6,
        "buffered_us": buffered_time * 1e6,
        "speedup": speedup,
    })
    assert speedup >= 2.0, (
        f"buffered plumbing only {speedup:.2f}x faster than legacy"
    )


def test_bench_buffered_vs_legacy_iteration():
    """End-to-end HierAdMo worker loop: buffered vs seed-era emulation.

    Context for the plumbing micro-benchmark above: the full iteration
    includes the forward/backward math that the refactor does not touch,
    so the end-to-end win is smaller — this records it and guards
    against the buffered runtime ever being slower overall.
    """
    fed = _make_bench_federation()
    model = fed.model
    algo = HierAdMo(fed, tau=10**9, pi=1)
    algo.history = fed.new_history("bench", {})
    algo._setup()

    xs = [fed.initial_params() for _ in range(fed.num_workers)]
    ys = [x.copy() for x in xs]
    controller = AdaptiveGammaController(fed.num_workers, fed.dim, "velocity")
    eta, gamma = algo.eta, algo.gamma

    def legacy_iteration():
        for worker in range(fed.num_workers):
            x_batch, y_batch = fed.samplers[worker].next_batch()
            grad, _ = _legacy_gradient(model, x_batch, y_batch, xs[worker])
            y_new = xs[worker] - eta * grad
            velocity = y_new - ys[worker]
            controller.accumulate(worker, grad, ys[worker], velocity)
            xs[worker] = y_new + gamma * velocity
            ys[worker] = y_new

    legacy_iteration()  # warm-up both paths
    algo._worker_iteration()
    legacy_time = _time_min(legacy_iteration)
    buffered_time = _time_min(algo._worker_iteration)
    speedup = legacy_time / buffered_time
    print(
        f"\n[bench] HierAdMo worker iteration, {fed.num_workers} workers, "
        f"dim={fed.dim}: legacy {legacy_time * 1e6:.0f} us, "
        f"buffered {buffered_time * 1e6:.0f} us -> {speedup:.2f}x"
    )
    record_bench("substrate", "hieradmo_iteration", {
        "workers": fed.num_workers,
        "dim": fed.dim,
        "legacy_us": legacy_time * 1e6,
        "buffered_us": buffered_time * 1e6,
        "speedup": speedup,
    })
    assert speedup >= 1.0, (
        f"buffered end-to-end iteration slower than legacy ({speedup:.2f}x)"
    )
