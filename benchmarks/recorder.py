"""Machine-readable bench results: merge entries into BENCH_<stem>.json.

Each bench test calls :func:`record_bench` with a stem (``substrate``,
``telemetry``), an entry name and a JSON-able payload.  Entries merge
into ``BENCH_<stem>.json`` at the repo root, so re-running a single
bench refreshes only its own entry and the files double as the
committed performance record.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def record_bench(stem: str, entry: str, payload: dict) -> Path:
    """Merge ``payload`` under ``entry`` into ``BENCH_<stem>.json``."""
    path = REPO_ROOT / f"BENCH_{stem}.json"
    if path.exists():
        document = json.loads(path.read_text(encoding="utf-8"))
    else:
        document = {
            "bench": stem,
            "machine": {
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "entries": {},
        }
    document["entries"][entry] = payload
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
