"""Fig. 2 (d): the cross-silo scale run with N = 100 workers.

The paper shows the Table-II ordering persists with 100 workers under
10 edge nodes.  We run the four headline algorithms on a 10-edge x
10-worker topology and check HierAdMo still leads.
"""

from repro.experiments import ExperimentConfig, run_many

from .conftest import run_once

ALGORITHMS = ("HierAdMo", "HierAdMo-R", "HierFAVG", "FedAvg")

CONFIG = ExperimentConfig(
    dataset="mnist",
    model="logistic",
    num_samples=6000,
    num_edges=10,
    workers_per_edge=10,
    scheme="xclass",
    classes_per_worker=3,
    eta=0.01,
    tau=10,
    pi=2,
    total_iterations=150,
    eval_every=50,
    batch_size=16,
    seed=3,
)


def test_fig2d_large_n(benchmark):
    histories = run_once(benchmark, run_many, ALGORITHMS, CONFIG)
    print(f"\nFig 2(d): N={CONFIG.num_workers} workers, "
          f"L={CONFIG.num_edges} edges")
    for name in ALGORITHMS:
        curve = " ".join(f"{a:.3f}" for a in histories[name].test_accuracy)
        print(f"  {name:<12} {curve}")

    finals = {n: h.final_accuracy for n, h in histories.items()}
    top = max(finals.values())
    assert finals["HierAdMo"] >= top - 0.03, finals
    assert finals["HierAdMo"] > finals["FedAvg"], finals
