"""Telemetry overhead benchmarks (PR acceptance: disabled ≤ 2%).

Three variants of the same HierAdMo worker-iteration loop on the
small-MLP bench federation:

* ``untraced`` — a replica of the iteration body with no telemetry calls
  at all (the pre-telemetry code, kept inline here as the baseline);
* ``disabled`` — the live instrumented code with the null tracer
  installed (the default), which must stay within 2% of ``untraced``;
* ``enabled``  — the live code with a recording tracer, to document what
  tracing actually costs when you ask for it.

Results land in ``BENCH_telemetry.json`` at the repo root.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import telemetry
from repro.core import Federation, HierAdMo
from repro.data import Dataset
from repro.nn.models import make_mlp

from .recorder import record_bench

# The acceptance threshold for the disabled-tracer ("null tracer") path.
MAX_DISABLED_OVERHEAD = 0.02


def _time_min(fn, repeats=9, iters=20):
    """Best-of-repeats mean iteration time (robust to scheduler noise)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / iters


def _make_bench_federation(num_edges=4, per_edge=6):
    """Small MLP (dim 421), 24 workers across 4 edges."""
    rng = np.random.default_rng(7)
    edges = [
        [
            Dataset(rng.normal(size=(96, 20)), rng.integers(0, 5, 96), 5)
            for _ in range(per_edge)
        ]
        for _ in range(num_edges)
    ]
    model = make_mlp(20, (16,), 5, rng=8)
    return Federation(model, edges, edges[0][0], batch_size=8, seed=9)


def _make_algo():
    fed = _make_bench_federation()
    algo = HierAdMo(fed, tau=10**9, pi=1)
    algo.history = fed.new_history("bench", {})
    algo._setup()
    return fed, algo


def _untraced_iteration(fed, algo):
    """The worker-iteration body with no telemetry calls, for baseline."""
    grads = algo._grads
    total_loss = 0.0
    for worker in range(fed.num_workers):
        _, loss = fed.gradient(worker, algo.x[worker], out=grads[worker])
        total_loss += loss
    y_new = algo.x - algo.eta * grads
    velocity = y_new - algo.y
    algo.controller.accumulate_all(grads, algo.y, velocity)
    algo.x = y_new + algo.gamma * velocity
    algo.y = y_new
    return total_loss / fed.num_workers


def test_bench_null_tracer_overhead():
    """Disabled-tracer iteration within 2% of the untraced replica."""
    telemetry.disable()
    fed, algo = _make_algo()

    def untraced():
        _untraced_iteration(fed, algo)

    untraced()  # warm-up both paths
    algo._worker_iteration()
    untraced_time = _time_min(untraced)
    disabled_time = _time_min(algo._worker_iteration)

    with telemetry.tracing():
        algo._worker_iteration()  # warm-up the recording path
        enabled_time = _time_min(algo._worker_iteration)

    overhead = disabled_time / untraced_time - 1.0
    enabled_overhead = enabled_time / untraced_time - 1.0
    print(
        f"\n[bench] telemetry overhead, {fed.num_workers} workers, "
        f"dim={fed.dim}: untraced {untraced_time * 1e6:.0f} us, "
        f"disabled {disabled_time * 1e6:.0f} us ({overhead:+.1%}), "
        f"enabled {enabled_time * 1e6:.0f} us ({enabled_overhead:+.1%})"
    )
    record_bench("telemetry", "null_tracer_overhead", {
        "workers": fed.num_workers,
        "dim": fed.dim,
        "untraced_us": untraced_time * 1e6,
        "disabled_us": disabled_time * 1e6,
        "enabled_us": enabled_time * 1e6,
        "disabled_overhead": overhead,
        "enabled_overhead": enabled_overhead,
        "threshold": MAX_DISABLED_OVERHEAD,
    })
    assert overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-tracer iteration {overhead:+.1%} over the untraced "
        f"baseline (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_bench_span_primitives():
    """Raw cost of one span enter/exit, counter bump and observation."""
    tracer = telemetry.Tracer()

    def one_span():
        with tracer.span("bench"):
            pass

    null = telemetry.NULL_TRACER

    def one_null_span():
        with null.span("bench"):
            pass

    span_ns = _time_min(one_span, iters=1000) * 1e9
    null_ns = _time_min(one_null_span, iters=1000) * 1e9
    count_ns = _time_min(lambda: tracer.count("c"), iters=1000) * 1e9
    observe_ns = _time_min(lambda: tracer.observe("h", 1.0), iters=1000) * 1e9
    print(
        f"\n[bench] span {span_ns:.0f} ns, null span {null_ns:.0f} ns, "
        f"count {count_ns:.0f} ns, observe {observe_ns:.0f} ns"
    )
    record_bench("telemetry", "primitives", {
        "span_ns": span_ns,
        "null_span_ns": null_ns,
        "count_ns": count_ns,
        "observe_ns": observe_ns,
    })
    # Sanity only: the null span must be far cheaper than a real one.
    assert null_ns < span_ns
