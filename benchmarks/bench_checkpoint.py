"""Checkpoint overhead benchmark (PR acceptance: every-10 saves ≤ 5%).

Periodic durable snapshots must not meaningfully slow training: the
full save path — gathering the state matrices, CRC-stamping, the
atomic write-then-rename (fsync included), retention pruning — has to
stay within 5% of training time when amortized over a
``checkpoint_every=10`` schedule.

The overhead is measured as ``median_save_cost / (checkpoint_every *
per_iteration_cost)`` rather than by diffing two end-to-end runs: the
signal (a few ms of save per ten iterations) is an order of magnitude
smaller than scheduler-induced run-to-run variance on a shared box, so
the difference of two totals is mostly noise while the two components
are individually stable.

The workload is a small CNN federation: a save's cost is dominated by
a fixed floor (fsync + archive bookkeeping), so the meaningful measure
is against iterations doing a realistic amount of compute per state
byte — which is what training at any practical scale looks like.  A
toy-sized run makes any fixed cost look enormous without saying
anything about the save path itself.
"""

from __future__ import annotations

import statistics
import time

from repro.checkpoint import CheckpointManager
from repro.core import Federation, HierAdMo
from repro.data import (
    make_synthetic_mnist,
    partition_xclass,
    train_test_split,
)
from repro.nn.models import make_cnn

from .recorder import record_bench

# Acceptance threshold for checkpoint-every-10 saves.
MAX_CHECKPOINT_OVERHEAD = 0.05
ITERATIONS = 40
CHECKPOINT_EVERY = 10
TRAIN_REPEATS = 5
SAVE_REPEATS = 15


def _make_federation():
    corpus = make_synthetic_mnist(480, image_size=12, rng=21)
    train, test = train_test_split(corpus, 0.25, rng=22)
    parts = partition_xclass(train, 4, 3, rng=23)
    model = make_cnn(1, 12, 10, width=3, hidden=16, rng=24)
    return Federation(
        model, [parts[:2], parts[2:]], test, batch_size=64, seed=25
    )


def _make_algorithm():
    return HierAdMo(_make_federation(), eta=0.05, tau=5, pi=2)


def _timed_run() -> float:
    """Seconds for one fresh short unmanaged HierAdMo run."""
    algo = _make_algorithm()
    start = time.perf_counter()
    algo.run(ITERATIONS, eval_every=ITERATIONS)
    return time.perf_counter() - start


def test_bench_checkpoint_overhead(tmp_path):
    """Median save cost amortized at every-10 within 5% of training."""
    _timed_run()  # warm-up (imports, caches)
    baseline = min(_timed_run() for _ in range(TRAIN_REPEATS))
    per_iteration = baseline / ITERATIONS

    # Save cost on a live end-of-run algorithm, steady-state: every
    # save writes a fresh archive and the retention pass prunes, so
    # the fsync + unlink costs are all in the measurement.
    algorithm = _make_algorithm()
    algorithm.run(ITERATIONS, eval_every=ITERATIONS)
    manager = CheckpointManager(
        tmp_path / "saves", every=CHECKPOINT_EVERY
    )
    save_times = []
    for index in range(SAVE_REPEATS):
        start = time.perf_counter()
        manager.save(
            algorithm,
            iteration=index + 1,
            driver={"kind": "lockstep", "state": {
                "iteration": index + 1,
                "running_loss": 0.0,
                "since_eval": 0,
            }},
            total_iterations=ITERATIONS,
            eval_every=ITERATIONS,
        )
        save_times.append(time.perf_counter() - start)
    save_cost = statistics.median(save_times)

    overhead = save_cost / (CHECKPOINT_EVERY * per_iteration)
    print(
        f"\n[bench] checkpoint overhead: iteration "
        f"{per_iteration * 1e3:.2f} ms, save {save_cost * 1e3:.2f} ms, "
        f"amortized at every-{CHECKPOINT_EVERY} {overhead:+.1%}"
    )
    record_bench("checkpoint", "checkpoint_overhead", {
        "iterations": ITERATIONS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "baseline_ms": baseline * 1e3,
        "iteration_ms": per_iteration * 1e3,
        "save_ms": save_cost * 1e3,
        "overhead": overhead,
        "threshold": MAX_CHECKPOINT_OVERHEAD,
    })
    assert overhead <= MAX_CHECKPOINT_OVERHEAD, (
        f"checkpoint-every-{CHECKPOINT_EVERY} saves cost {overhead:+.1%} "
        f"of training time (budget {MAX_CHECKPOINT_OVERHEAD:.0%})"
    )
