"""Shared benchmark helpers.

Every bench runs its experiment exactly once via ``run_once`` (the
experiments are minutes-scale; statistical repetition belongs to the
micro-benchmarks in bench_substrate.py) and prints the paper-style table
so the run log doubles as the reproduction record.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
