"""Fig. 2 (e)–(g): accuracy under 3/6/9-class non-i.i.d. data.

Checks the two paper claims: heterogeneity (smaller x) hurts everyone,
and HierAdMo stays at (or near) the top at every level.
"""

from repro.experiments import (
    ExperimentConfig,
    NONIID_ALGORITHMS,
    format_results_table,
    run_noniid_sweep,
)

from .conftest import run_once

BASE = ExperimentConfig(
    dataset="mnist",
    model="logistic",
    num_samples=1600,
    eta=0.01,
    tau=10,
    pi=2,
    total_iterations=250,
    eval_every=50,
    seed=4,
)


def test_fig2efg_noniid_levels(benchmark):
    sweep = run_once(
        benchmark,
        run_noniid_sweep,
        (3, 6, 9),
        algorithms=NONIID_ALGORITHMS,
        base_config=BASE,
    )
    table = {
        name: {f"x={x}": sweep[x][name].final_accuracy for x in sorted(sweep)}
        for name in NONIID_ALGORITHMS
    }
    print()
    print(format_results_table(
        table, value_format="{:.3f}",
        title="Fig 2(e-g): final accuracy vs x-class non-iid level",
    ))

    for x in (3, 6, 9):
        finals = {n: sweep[x][n].final_accuracy for n in NONIID_ALGORITHMS}
        top = max(finals.values())
        assert finals["HierAdMo"] >= top - 0.03, (x, finals)

    # Heterogeneity hurts: x=3 is no easier than x=9 for the
    # momentum-free baselines (FedAvg is the cleanest signal).
    assert (
        sweep[9]["FedAvg"].final_accuracy
        >= sweep[3]["FedAvg"].final_accuracy - 0.02
    )
