"""Event-driven deployment simulation bench (extension).

Quantifies two deployment questions the coarse timeline cannot answer:

* how much wall-clock the barrier process actually costs vs the
  per-iteration-max approximation, and
* how much a straggler-tolerant edge quorum buys under heavy-tail
  worker delays,

plus two gates on the execution engine itself, recorded to
``BENCH_eventsim.json``:

* event-processing throughput of a full async training run, and
* async-vs-sync simulated time-to-accuracy under stragglers — the
  whole point of quorum-based closure is that partial rounds reach the
  same accuracy in far less simulated wall-clock time.
"""

import time

import numpy as np

from repro.algorithms import AsyncHierAdMo
from repro.core import Federation
from repro.data import Dataset
from repro.nn.models import make_mlp
from repro.simulation import (
    AsyncDeployment,
    ThreeTierTimeline,
    add_stragglers,
    worker_device_pool,
)
from repro.simulation.events import EventDrivenSimulator
from repro.topology import Topology

from .conftest import run_once
from .recorder import record_bench

PAYLOAD = 8e5  # ~100k float64 parameters

# Engine-gate run shape: long enough for accuracy to climb well above
# the initial eval, short enough to keep the bench under a second.
TRAIN_ITERATIONS = 60
MIN_EVENTS_PER_SEC = 200.0


def _make_federation(num_edges=2, per_edge=4, seed=7):
    rng = np.random.default_rng(seed)
    edges = [
        [
            Dataset(rng.normal(size=(64, 20)), rng.integers(0, 5, 64), 5)
            for _ in range(per_edge)
        ]
        for _ in range(num_edges)
    ]
    model = make_mlp(20, (16,), 5, rng=seed + 1)
    return Federation(model, edges, edges[0][0], batch_size=8, seed=seed)


def _straggler_deployment(quorum, num_workers=8):
    devices = add_stragglers(worker_device_pool(num_workers), 0.25, 10.0)
    return AsyncDeployment(devices, payload_bytes=PAYLOAD, quorum=quorum)


def test_event_vs_coarse_timeline(benchmark):
    topo = Topology.uniform(4, 4, 100)
    devices = worker_device_pool(topo.num_workers)

    def evaluate():
        event = EventDrivenSimulator(topo, devices, PAYLOAD).simulate(
            200, tau=10, pi=2, rng=0
        )
        coarse = ThreeTierTimeline(topo, devices, PAYLOAD).simulate(
            200, tau=10, pi=2, rng=0
        )
        return event.total_time, float(coarse[-1])

    event_total, coarse_total = run_once(benchmark, evaluate)
    print(f"\nevent-driven total: {event_total:8.1f}s")
    print(f"coarse timeline:    {coarse_total:8.1f}s "
          f"(+{(coarse_total / event_total - 1) * 100:.1f}% over-sync)")
    # Barrier process is never slower than per-iteration max sync.
    assert event_total <= coarse_total * 1.01


def test_quorum_under_stragglers(benchmark):
    topo = Topology.uniform(4, 4, 100)
    devices = add_stragglers(
        worker_device_pool(topo.num_workers), 0.15, 10.0
    )

    def evaluate():
        out = {}
        for quorum in (1.0, 0.75, 0.5):
            result = EventDrivenSimulator(
                topo, devices, PAYLOAD, quorum=quorum
            ).simulate(200, tau=10, pi=2, rng=1)
            late = sum(
                len(record.workers_late) for record in result.edge_rounds
            )
            out[quorum] = (result.total_time, late)
        return out

    results = run_once(benchmark, evaluate)
    print("\nquorum   total time   late uploads dropped")
    for quorum, (total, late) in results.items():
        print(f"{quorum:6.2f} {total:10.1f}s   {late}")
    assert results[0.5][0] < results[1.0][0]
    assert results[0.75][0] < results[1.0][0]


def test_bench_engine_event_throughput(benchmark):
    """Events/sec through a full async HierAdMo training run."""

    def evaluate():
        algorithm = AsyncHierAdMo(
            _make_federation(),
            tau=5,
            pi=2,
            deployment=_straggler_deployment(0.5),
        )
        start = time.perf_counter()
        algorithm.run(TRAIN_ITERATIONS, eval_every=TRAIN_ITERATIONS)
        elapsed = time.perf_counter() - start
        return algorithm.runner.queue.processed, elapsed

    processed, elapsed = run_once(benchmark, evaluate)
    rate = processed / elapsed
    print(f"\nevents processed: {processed}")
    print(f"throughput:       {rate:10.0f} events/s")
    record_bench(
        "eventsim",
        "engine_event_throughput",
        {
            "events_processed": int(processed),
            "events_per_second": round(rate, 1),
            "train_iterations": TRAIN_ITERATIONS,
            "quorum": 0.5,
        },
    )
    assert rate > MIN_EVENTS_PER_SEC


def test_bench_async_vs_sync_time_to_accuracy(benchmark):
    """Acceptance gate: under stragglers, quorum-based async HierAdMo
    reaches the common target accuracy in less *simulated* wall-clock
    time than the full-barrier (quorum=1) run."""

    def evaluate():
        histories = {}
        for label, quorum in (("sync", 1.0), ("async", 0.5)):
            algorithm = AsyncHierAdMo(
                _make_federation(),
                tau=5,
                pi=2,
                deployment=_straggler_deployment(quorum),
            )
            histories[label] = algorithm.run(
                TRAIN_ITERATIONS, eval_every=10
            )
        return histories

    histories = run_once(benchmark, evaluate)
    target = min(h.final_accuracy for h in histories.values())
    # The target must require actual training, otherwise both arms hit
    # it at the t=0 eval and the comparison is vacuous.
    assert all(target > h.test_accuracy[0] for h in histories.values())
    times = {
        label: history.time_to_accuracy(target)
        for label, history in histories.items()
    }
    print(f"\ntarget accuracy:  {target:.4f}")
    for label, reached in times.items():
        print(f"{label:5s} time-to-accuracy: {reached:10.1f}s simulated")
    record_bench(
        "eventsim",
        "async_vs_sync_time_to_accuracy",
        {
            "target_accuracy": round(target, 6),
            "sync_seconds": round(times["sync"], 2),
            "async_seconds": round(times["async"], 2),
            "speedup": round(times["sync"] / times["async"], 2),
            "train_iterations": TRAIN_ITERATIONS,
            "async_quorum": 0.5,
            "straggler_probability": 0.25,
            "straggler_factor": 10.0,
        },
    )
    assert times["async"] < times["sync"]
