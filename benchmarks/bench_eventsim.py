"""Event-driven deployment simulation bench (extension).

Quantifies two deployment questions the coarse timeline cannot answer:

* how much wall-clock the barrier process actually costs vs the
  per-iteration-max approximation, and
* how much a straggler-tolerant edge quorum buys under heavy-tail
  worker delays.
"""

from repro.simulation import (
    ThreeTierTimeline,
    add_stragglers,
    worker_device_pool,
)
from repro.simulation.events import EventDrivenSimulator
from repro.topology import Topology

from .conftest import run_once

PAYLOAD = 8e5  # ~100k float64 parameters


def test_event_vs_coarse_timeline(benchmark):
    topo = Topology.uniform(4, 4, 100)
    devices = worker_device_pool(topo.num_workers)

    def evaluate():
        event = EventDrivenSimulator(topo, devices, PAYLOAD).simulate(
            200, tau=10, pi=2, rng=0
        )
        coarse = ThreeTierTimeline(topo, devices, PAYLOAD).simulate(
            200, tau=10, pi=2, rng=0
        )
        return event.total_time, float(coarse[-1])

    event_total, coarse_total = run_once(benchmark, evaluate)
    print(f"\nevent-driven total: {event_total:8.1f}s")
    print(f"coarse timeline:    {coarse_total:8.1f}s "
          f"(+{(coarse_total / event_total - 1) * 100:.1f}% over-sync)")
    # Barrier process is never slower than per-iteration max sync.
    assert event_total <= coarse_total * 1.01


def test_quorum_under_stragglers(benchmark):
    topo = Topology.uniform(4, 4, 100)
    devices = add_stragglers(
        worker_device_pool(topo.num_workers), 0.15, 10.0
    )

    def evaluate():
        out = {}
        for quorum in (1.0, 0.75, 0.5):
            result = EventDrivenSimulator(
                topo, devices, PAYLOAD, quorum=quorum
            ).simulate(200, tau=10, pi=2, rng=1)
            late = sum(
                len(record.workers_late) for record in result.edge_rounds
            )
            out[quorum] = (result.total_time, late)
        return out

    results = run_once(benchmark, evaluate)
    print("\nquorum   total time   late uploads dropped")
    for quorum, (total, late) in results.items():
        print(f"{quorum:6.2f} {total:10.1f}s   {late}")
    assert results[0.5][0] < results[1.0][0]
    assert results[0.75][0] < results[1.0][0]
