"""Ablations over the design decisions called out in DESIGN.md §6.

* angle reading: "velocity" (default) vs the literal "y" sums — the "y"
  reading collapses the cosine toward 0 in high dimension, effectively
  disabling the edge momentum;
* γℓ smoothing: EMA (default λ=0.3) vs the raw per-round rule (λ=1.0) —
  the raw rule flaps between 0.99 and 0 and loses accuracy on long runs;
* boundary-step exclusion is exercised implicitly by both of the above
  (see tests/core/test_adaptive.py for its unit-level behaviour).
"""

import numpy as np

from repro.core import HierAdMo
from repro.experiments import ExperimentConfig, build_federation

from .conftest import run_once

CONFIG = ExperimentConfig(
    dataset="mnist",
    model="logistic",
    num_samples=1600,
    eta=0.01,
    gamma=0.5,
    tau=10,
    pi=2,
    total_iterations=400,
    eval_every=100,
    seed=8,
)


def _run_variant(**kwargs):
    federation = build_federation(CONFIG)
    algo = HierAdMo(
        federation, eta=CONFIG.eta, gamma=CONFIG.gamma,
        tau=CONFIG.tau, pi=CONFIG.pi, **kwargs,
    )
    return algo.run(CONFIG.total_iterations, eval_every=CONFIG.eval_every)


def test_ablation_angle_mode(benchmark):
    def evaluate():
        return (
            _run_variant(angle_mode="velocity"),
            _run_variant(angle_mode="y"),
        )

    velocity, literal = run_once(benchmark, evaluate)
    v_gamma = np.mean([np.mean(list(t.values()))
                       for t in velocity.gamma_trace[5:]])
    y_gamma = np.mean([np.mean(list(t.values()))
                       for t in literal.gamma_trace[5:]])
    print(f"\nvelocity reading: final={velocity.final_accuracy:.3f}, "
          f"mean gamma_l={v_gamma:.3f}")
    print(f"literal-y reading: final={literal.final_accuracy:.3f}, "
          f"mean gamma_l={y_gamma:.3f}")
    # The literal reading concentrates near zero momentum.
    assert y_gamma < v_gamma
    assert velocity.final_accuracy >= literal.final_accuracy - 0.02


def test_ablation_gamma_smoothing(benchmark):
    def evaluate():
        return (
            _run_variant(gamma_smoothing=0.3),
            _run_variant(gamma_smoothing=1.0),
        )

    smoothed, raw = run_once(benchmark, evaluate)

    def flap_count(history):
        means = [np.mean(list(t.values())) for t in history.gamma_trace]
        return sum(
            1 for a, b in zip(means, means[1:]) if abs(a - b) > 0.5
        )

    print(f"\nEMA-smoothed: final={smoothed.final_accuracy:.3f}, "
          f"gamma flips={flap_count(smoothed)}")
    print(f"raw eq.(7):   final={raw.final_accuracy:.3f}, "
          f"gamma flips={flap_count(raw)}")
    assert flap_count(smoothed) < flap_count(raw)
    assert smoothed.final_accuracy >= raw.final_accuracy - 0.01
