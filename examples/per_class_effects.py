"""Per-class effects of non-i.i.d. data (beyond top-1 accuracy).

Under the paper's x-class partition a worker never sees most classes.
This example trains FedAvg and HierAdMo under a strong 2-class partition
and inspects the per-class recall and macro-F1 of the global model —
showing that hierarchical momentum not only raises average accuracy but
evens out the per-class damage.

Run:  python examples/per_class_effects.py
"""

import numpy as np

from repro.experiments import ExperimentConfig, build_federation, build_algorithm
from repro.metrics import macro_f1, per_class_accuracy


def evaluate_per_class(config, algorithm_name):
    federation = build_federation(config)
    algorithm = build_algorithm(algorithm_name, federation, config)
    history = algorithm.run(
        config.total_iterations, eval_every=config.total_iterations
    )

    federation.model.set_flat_params(algorithm._global_params())
    test = federation.test_set
    predictions = federation.model.predict(test.x).argmax(axis=1)
    recalls = per_class_accuracy(test.y, predictions, test.num_classes)
    f1 = macro_f1(test.y, predictions, test.num_classes)
    return history.final_accuracy, recalls, f1


def main() -> None:
    config = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=2000,
        num_edges=2,
        workers_per_edge=3,
        scheme="xclass",
        classes_per_worker=2,   # strong heterogeneity
        eta=0.01,
        tau=10,
        pi=2,
        total_iterations=300,
        seed=6,
    )

    print("Strong non-iid (2 classes per worker), 6 workers / 2 edges\n")
    print(f"{'':12} {'top-1':>7} {'macroF1':>8}   per-class recall")
    for name in ("FedAvg", "HierFAVG", "HierAdMo"):
        accuracy, recalls, f1 = evaluate_per_class(config, name)
        recall_text = " ".join(
            "--" if np.isnan(r) else f"{r:.2f}" for r in recalls
        )
        print(f"{name:<12} {accuracy:7.3f} {f1:8.3f}   {recall_text}")

    print(
        "\nLook for: FedAvg's recall collapsing on some classes, while"
        "\nHierAdMo keeps every class above water (higher macro-F1)."
    )


if __name__ == "__main__":
    main()
