"""Algorithm shoot-out: HierAdMo vs the paper's ten baselines.

Reproduces one column of Table II at laptop scale: every algorithm runs
on an identically-seeded federation (same data partition, same initial
model, same batch sequences), so the ranking isolates the algorithms.

Run:  python examples/compare_algorithms.py [--model cnn|logistic]
"""

import argparse
import time

from repro import ALGORITHM_REGISTRY, ExperimentConfig
from repro.experiments import run_many


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="logistic", choices=["logistic", "linear", "cnn"]
    )
    parser.add_argument("--iterations", type=int, default=300)
    args = parser.parse_args()

    config = ExperimentConfig(
        dataset="mnist",
        model=args.model,
        num_samples=1600,
        scheme="xclass",
        classes_per_worker=3,
        eta=0.01,
        tau=10,
        pi=2,
        total_iterations=args.iterations,
        eval_every=max(args.iterations // 5, 1),
        seed=1,
    )

    print(
        f"Running {len(ALGORITHM_REGISTRY)} algorithms "
        f"({args.model} on synthetic MNIST, T={args.iterations}, "
        f"tau=10/pi=2 vs tau=20)..."
    )
    start = time.time()
    histories = run_many(tuple(ALGORITHM_REGISTRY), config)
    elapsed = time.time() - start

    print(f"\ndone in {elapsed:.1f}s\n")
    print(f"{'algorithm':<12} {'tier':<6} {'final':>7} {'best':>7}")
    ranked = sorted(
        histories.items(), key=lambda kv: -kv[1].final_accuracy
    )
    from repro import THREE_TIER_ALGORITHMS

    for name, history in ranked:
        tier = "three" if name in THREE_TIER_ALGORITHMS else "two"
        print(
            f"{name:<12} {tier:<6} {history.final_accuracy:7.3f} "
            f"{history.best_accuracy:7.3f}"
        )


if __name__ == "__main__":
    main()
