"""Deployment planning with the event-driven simulator.

Before rolling out a hierarchical FL system you want answers to:
How long will a training campaign take on my device fleet?  How much
does a straggler-tolerant quorum buy?  How badly does the two-tier
alternative pay for crossing the Internet every round?

This example answers all three with the discrete-event simulator (no
training involved — pure deployment timing).

Run:  python examples/deployment_planning.py
"""

from repro.simulation import (
    ThreeTierTimeline,
    TwoTierTimeline,
    add_stragglers,
    estimate_three_tier_energy,
    estimate_two_tier_energy,
    worker_device_pool,
)
from repro.simulation.events import EventDrivenSimulator
from repro.topology import Topology

MODEL_BYTES = 1.6e6  # ~200k float64 parameters
T, TAU, PI = 400, 10, 2


def main() -> None:
    topology = Topology.uniform(4, 4, 100)
    devices = worker_device_pool(topology.num_workers)

    print(f"Fleet: {topology.num_workers} workers under "
          f"{topology.num_edges} edges; model {MODEL_BYTES / 1e6:.1f} MB; "
          f"T={T}, tau={TAU}, pi={PI}\n")

    # Question 1: three-tier vs two-tier total campaign time.
    three = EventDrivenSimulator(topology, devices, MODEL_BYTES).simulate(
        T, TAU, PI, rng=0
    )
    two = TwoTierTimeline(
        topology.num_workers, devices, MODEL_BYTES
    ).simulate(T, TAU * PI, rng=0)
    print("1. Architecture choice (same aggregation budget):")
    print(f"   three-tier campaign: {three.total_time:8.1f}s")
    print(f"   two-tier campaign:   {two[-1]:8.1f}s "
          f"({two[-1] / three.total_time:.2f}x slower — WAN every round)\n")

    # Question 2: how much does the coarse model overstate?
    coarse = ThreeTierTimeline(topology, devices, MODEL_BYTES).simulate(
        T, TAU, PI, rng=0
    )
    print("2. Model fidelity:")
    print(f"   coarse per-iteration-max estimate: {coarse[-1]:8.1f}s "
          f"(+{(coarse[-1] / three.total_time - 1) * 100:.0f}% vs "
          "event-driven)\n")

    # Question 3: quorum under stragglers.
    straggling = add_stragglers(devices, probability=0.15, factor=10.0)
    print("3. Straggler tolerance (15% of iterations 10x slower):")
    for quorum in (1.0, 0.75, 0.5):
        result = EventDrivenSimulator(
            topology, straggling, MODEL_BYTES, quorum=quorum
        ).simulate(T, TAU, PI, rng=1)
        dropped = sum(len(r.workers_late) for r in result.edge_rounds)
        print(f"   quorum {quorum:4.2f}: {result.total_time:8.1f}s "
              f"({dropped} late uploads dropped)")
    print("\n   Lower quorums trade update completeness for wall-clock;")
    print("   the records name exactly which workers were dropped when.")

    # Question 4: device energy budget.
    three_energy = estimate_three_tier_energy(
        topology, devices, MODEL_BYTES, T, TAU, PI
    )
    two_energy = estimate_two_tier_energy(
        topology.num_workers, devices, MODEL_BYTES, T, TAU * PI
    )
    print("\n4. Worker energy budget (compute + radio):")
    print(f"   three-tier: {three_energy.total_joules:7.0f} J "
          f"(radio {three_energy.radio_joules:.0f} J on the LAN)")
    print(f"   two-tier:   {two_energy.total_joules:7.0f} J "
          f"(radio {two_energy.radio_joules:.0f} J across the WAN)")


if __name__ == "__main__":
    main()
