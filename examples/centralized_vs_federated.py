"""Centralized reference vs federated algorithms.

The classic FL sanity frame: centralized training (all data pooled, one
optimizer) upper-bounds what any federated scheme can do at the same
step budget.  This example trains the centralized NAG reference and
three federated algorithms on the same corpus and renders the curves as
terminal sparklines.

Run:  python examples/centralized_vs_federated.py
"""

from repro.core import Federation
from repro.data import make_synthetic_mnist, partition_xclass, train_test_split
from repro.experiments import ExperimentConfig, run_many
from repro.metrics.ascii_plot import compare_curves
from repro.nn.models import make_logistic_regression
from repro.nn.optim import NAG
from repro.nn.trainer import CentralizedTrainer

T = 300


def main() -> None:
    corpus = make_synthetic_mnist(1600, rng=7).flattened()
    train, test = train_test_split(corpus, 0.25, rng=8)

    print("Centralized NAG reference (pooled data)...")
    central = CentralizedTrainer(
        make_logistic_regression(train.num_features, 10, rng=9),
        train,
        test,
        NAG(lr=0.01, gamma=0.5),
        batch_size=32,
        rng=10,
    ).run(T, eval_every=30)

    print("Federated algorithms (3-class non-iid, 2 edges x 2 workers)...")
    config = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=1600,
        eta=0.01,
        tau=10,
        pi=2,
        total_iterations=T,
        eval_every=30,
        seed=7,
    )
    federated = run_many(("HierAdMo", "HierFAVG", "FedAvg"), config)

    curves = {"centralized": central, **federated}
    print()
    print(compare_curves(curves, width=30))
    print(
        "\nReading: centralized is the ceiling; HierAdMo closes most of"
        "\nthe federation gap that FedAvg leaves open under non-iid data."
    )


if __name__ == "__main__":
    main()
