"""Theorem 4 with data-driven constants.

Estimates the analysis constants (smoothness beta, Lipschitz rho,
gradient diversity delta) on a real federation, evaluates the
closed-form convergence bound, and compares its tau/pi monotonicity
predictions against actual training runs.

Run:  python examples/theory_meets_practice.py
"""

import numpy as np

from repro.experiments import ExperimentConfig, build_federation, run_single
from repro.theory import (
    MomentumConstants,
    estimate_gradient_diversity,
    estimate_lipschitz,
    estimate_smoothness,
    h_gap,
    j_gap,
)


def main() -> None:
    config = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=1200,
        eta=0.01,
        gamma=0.5,
        total_iterations=200,
        eval_every=100,
        seed=5,
    )
    federation = build_federation(config)

    print("Estimating analysis constants on the federation...")
    beta = estimate_smoothness(federation, num_points=5, rng=0)
    rho = estimate_lipschitz(federation, num_points=5, rng=0)
    _, delta_edges, delta_global = estimate_gradient_diversity(
        federation, num_points=3, rng=0
    )
    print(f"  beta (smoothness)     = {beta:.3f}")
    print(f"  rho  (Lipschitz)      = {rho:.3f}")
    print(f"  delta_l per edge      = {np.round(delta_edges, 3)}")
    print(f"  delta (global)        = {delta_global:.3f}")

    constants = MomentumConstants.from_hyperparameters(
        config.eta, beta, config.gamma
    )
    print(f"  gamma*A = {constants.gamma_a:.4f}, "
          f"gamma*B = {constants.gamma_b:.4f}")

    print("\nGap functions (Theorems 1-3):")
    for tau in (5, 10, 20):
        h_value = h_gap(tau, delta_global, constants)
        j_value = j_gap(
            tau, 2, delta_edges, delta_global, federation.edge_w,
            constants, gamma_edge=0.25, rho=rho, mu=0.5,
        )
        print(f"  tau={tau:3d}: h(tau, delta)={h_value:9.4f}   "
              f"j(tau, 2)={j_value:9.4f}")
    print("  (both increase with tau, as Theorem 4's discussion predicts)")

    print("\nEmpirical check of the same monotonicity (accuracy at equal T):")
    for tau in (5, 10, 20):
        run_config = config.with_overrides(tau=tau, pi=2)
        history = run_single("HierAdMo", run_config)
        print(f"  tau={tau:3d}: final accuracy = {history.final_accuracy:.3f}")


if __name__ == "__main__":
    main()
