"""Data-heterogeneity study (the paper's Fig. 2 e-g scenario).

Assigns each worker exactly x classes of the 10-class dataset for
x in {3, 6, 9} and shows how every algorithm degrades as heterogeneity
grows (smaller x) while HierAdMo stays on top.

Run:  python examples/noniid_heterogeneity.py
"""

from repro.experiments import (
    ExperimentConfig,
    format_results_table,
    run_noniid_sweep,
)


def main() -> None:
    base = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=1600,
        eta=0.01,
        tau=10,
        pi=2,
        total_iterations=250,
        eval_every=50,
        seed=2,
    )
    algorithms = ("HierAdMo", "HierAdMo-R", "HierFAVG", "FedNAG", "FedAvg")

    print("Sweeping x-class non-iid levels (x = classes per worker)...")
    sweep = run_noniid_sweep(
        (3, 6, 9), algorithms=algorithms, base_config=base
    )

    table = {
        name: {
            f"x={x}": sweep[x][name].final_accuracy for x in sorted(sweep)
        }
        for name in algorithms
    }
    print()
    print(
        format_results_table(
            table,
            value_format="{:.3f}",
            title="Final accuracy vs heterogeneity (smaller x = harder)",
        )
    )

    print("\nObservations to look for (paper Fig. 2 e-g):")
    print(" * every algorithm drops as x shrinks;")
    print(" * HierAdMo keeps the best (or near-best) accuracy at every x.")


if __name__ == "__main__":
    main()
