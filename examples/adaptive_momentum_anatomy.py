"""Anatomy of the adaptive edge momentum (the paper's core idea).

Compares HierAdMo's self-tuned gamma_l against an exhaustive enumeration
of fixed gamma_l values (the Fig. 2 i-k experiment), prints the gamma_l
trajectory, and checks the Theorem-5 expectation argument numerically.

Run:  python examples/adaptive_momentum_anatomy.py
"""

from repro import ExperimentConfig, run_single
from repro.experiments import best_fixed_gamma, run_adaptive_comparison
from repro.theory import (
    adaptive_gamma_moments,
    fixed_gamma_moments,
    theorem5_gap_ratio,
)


def main() -> None:
    base = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=1600,
        eta=0.01,
        tau=10,
        pi=2,
        total_iterations=300,
        eval_every=75,
        seed=4,
    )

    print("=== adaptive gamma_l vs fixed grid (Fig. 2 i-k style) ===")
    for gamma in (0.3, 0.6, 0.9):
        results = run_adaptive_comparison(gamma, base_config=base)
        best, best_accuracy = best_fixed_gamma(results)
        print(f"\nworker gamma = {gamma}:")
        for key in sorted(results):
            marker = " <-- adaptive" if key == "adaptive" else ""
            print(f"  {key:<10} {results[key]:.3f}{marker}")
        print(
            f"  best fixed gamma_l = {best} ({best_accuracy:.3f}); "
            f"adaptive gap = {best_accuracy - results['adaptive']:+.3f}"
        )

    print("\n=== gamma_l trajectory during one run ===")
    history = run_single("HierAdMo", base)
    means = [sum(t.values()) / len(t) for t in history.gamma_trace]
    for k in range(0, len(means), max(1, len(means) // 10)):
        print(f"  edge round {k + 1:3d}: gamma_l = {means[k]:.3f}")

    print("\n=== Theorem 5: expectation argument ===")
    adaptive_mean, adaptive_var = adaptive_gamma_moments()
    fixed_mean, fixed_var = fixed_gamma_moments()
    print(f"  E[gamma_l adaptive] = {adaptive_mean:.4f} (paper: 1/4)")
    print(f"  E[gamma_l fixed]    = {fixed_mean:.4f} (paper: 1/2)")
    print(
        f"  gap ratio = {theorem5_gap_ratio():.3f} < 1  "
        "=> tighter convergence bound for HierAdMo"
    )


if __name__ == "__main__":
    main()
