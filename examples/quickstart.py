"""Quickstart: train HierAdMo on a synthetic non-i.i.d. federation.

Builds the paper's default small topology (2 edge nodes x 2 workers,
3-class non-i.i.d. data), trains the classic CNN with HierAdMo, and
prints the accuracy curve plus the adaptive edge-momentum trace.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, run_single


def main() -> None:
    config = ExperimentConfig(
        dataset="mnist",
        model="cnn",
        num_samples=1200,
        num_edges=2,
        workers_per_edge=2,
        scheme="xclass",
        classes_per_worker=3,
        eta=0.01,
        gamma=0.5,
        tau=10,
        pi=2,
        total_iterations=200,
        eval_every=20,
        seed=0,
    )

    print("Training HierAdMo (CNN on synthetic MNIST, 3-class non-iid)...")
    history = run_single("HierAdMo", config)

    print("\niteration  accuracy   loss")
    for t, accuracy, loss in zip(
        history.iterations, history.test_accuracy, history.test_loss
    ):
        bar = "#" * int(40 * accuracy)
        print(f"{t:9d}  {accuracy:8.3f}  {loss:5.3f}  {bar}")

    print(f"\nfinal accuracy: {history.final_accuracy:.3f}")
    print(f"edge aggregations: {history.worker_edge_rounds}, "
          f"cloud aggregations: {history.edge_cloud_rounds}")

    mean_gammas = [
        sum(trace.values()) / len(trace) for trace in history.gamma_trace
    ]
    print("\nadaptive gamma_l (mean over edges) per edge aggregation:")
    print("  " + " ".join(f"{g:.2f}" for g in mean_gammas))


if __name__ == "__main__":
    main()
