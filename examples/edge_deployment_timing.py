"""Trace-driven deployment timing (the paper's Fig. 2 h/l scenario).

Trains several algorithms, then replays their iteration traces against
device and network delay models (laptop/phone workers on WiFi, edge on
Ethernet, cloud across the public Internet) to estimate the wall-clock
time each would need to reach a target accuracy on real hardware.

Run:  python examples/edge_deployment_timing.py
"""

from repro.experiments import ExperimentConfig, run_time_to_accuracy


def main() -> None:
    target = 0.90
    config = ExperimentConfig(
        dataset="mnist",
        model="logistic",
        num_samples=1600,
        eta=0.02,
        tau=10,
        pi=2,
        total_iterations=300,
        eval_every=10,
        seed=3,
    )
    algorithms = (
        "HierAdMo",
        "HierAdMo-R",
        "HierFAVG",
        "FastSlowMo",
        "FedNAG",
        "FedAvg",
    )

    print(
        f"Simulating time-to-{target:.2f}-accuracy "
        "(three-tier: tau=10, pi=2; two-tier: tau=20)..."
    )
    results = run_time_to_accuracy(
        algorithms, target=target, base_config=config
    )

    print(f"\n{'algorithm':<12} {'reached at':>12} {'sim. time':>12}")
    reference = results["HierAdMo"].seconds
    for name, result in sorted(
        results.items(),
        key=lambda kv: kv[1].seconds if kv[1].seconds is not None else 1e18,
    ):
        if result.seconds is None:
            print(f"{name:<12} {'never':>12} {'--':>12}")
            continue
        speedup = ""
        if reference is not None and name != "HierAdMo":
            speedup = f"   ({result.seconds / reference:.2f}x vs HierAdMo)"
        print(
            f"{name:<12} {result.iteration:>10} it "
            f"{result.seconds:>10.1f}s{speedup}"
        )

    print(
        "\nThree-tier algorithms pay the WAN only every tau*pi iterations;"
        "\ntwo-tier baselines cross the Internet at every aggregation."
    )


if __name__ == "__main__":
    main()
